"""CI perf-regression gate for the simulated main-loop cycle counts.

Runs the ``repro.sched`` schedule search plus the Fig. 7-9 axis sweeps,
then compares every measured cycles-per-iteration metric against the
checked-in per-device baseline
``benchmarks/baselines/sched_<device>.json``:

* a metric more than ``--tolerance`` (default 10%) *slower* than its
  baseline fails the gate (exit 1);
* a metric more than ``--tolerance`` *faster* is reported as an
  improvement — rerun with ``--update-baselines`` to lock it in;
* a changed search winner fails the gate (the simulator is
  deterministic, so the winner only moves when the code does);
* both tile families (f22 and f44) are measured, and a baseline with no
  metrics for a measured family fails loudly — a shipped kernel family
  must never run un-gated.

Baselines are **schema 2**: one file per device, carrying the exact
:class:`~repro.gpusim.arch.DeviceSpec` the metrics were measured on plus
one profile per gate configuration::

    {"schema": 2, "device": "V100", "spec": {...},
     "profiles": {"quick": {"iters": 3, "families": {...}},
                  "full":  {"iters": 3, "families": {...}}}}

``--quick`` gates against the ``quick`` profile (QUICK_SPACE, 2 rungs —
the per-PR CI configuration); without it the ``full`` profile (the
entire 54-point f22 grid + 27-point f44 grid — the nightly
configuration).  ``--update-baselines`` regenerates only the profile it
ran, preserving the other.  Legacy flat / single-profile baselines are
migrated on read.  A baseline whose embedded device spec no longer
matches the registry fails the run (exit 2): the numbers were measured
on a different machine model, so comparing against them is meaningless.

The fresh measurements are always written to
``<out-dir>/BENCH_sched_regression_<device>.json`` so CI can upload
them as an artifact whether the gate passes or fails.

``--inject-regression PCT`` inflates every measured cycle count by
PCT percent before comparing — the knob used to demonstrate that the
gate actually fails (e.g. ``--inject-regression 15`` against a 10%
tolerance).

Usage::

    python benchmarks/perf_regression.py --quick                # CI gate
    python benchmarks/perf_regression.py --device V100 --quick
    python benchmarks/perf_regression.py --quick --update-baselines
    python benchmarks/perf_regression.py --quick --inject-regression 15
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.common.errors import DeviceError
from repro.gpusim import DEVICES, canonical_device_key
from repro.runtime import ExecutionContext
from repro.sched import (
    DEFAULT_SPACE,
    F44_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SCHEDULE_FIELDS,
    SearchBudget,
    evaluate_schedule,
    prefetch_schedules,
    successive_halving,
)

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

SCHEMA_VERSION = 2

#: Both shipped tile families are gated; a baseline that predates one of
#: them fails loudly instead of silently skipping the new kernels.
GATED_FAMILIES = ("f22", "f44")


def _slug(device_key: str) -> str:
    return device_key.lower()


def baseline_path(device_key: str) -> str:
    return os.path.join(BASELINE_DIR, f"sched_{_slug(device_key)}.json")


def _regen_command(device_key: str, profile: str) -> str:
    quick = " --quick" if profile == "quick" else ""
    return (
        f"PYTHONPATH=src python benchmarks/perf_regression.py "
        f"--device {device_key}{quick} --update-baselines"
    )


def _collect_family(device, tile: str, space, budget, ctx,
                    axis_sweeps: bool) -> dict:
    """One tile family's gated metrics: rung-0 search scores (+ sweeps)."""
    result = successive_halving(space, device, budget=budget, context=ctx,
                                tile=tile)
    metrics: dict[str, float] = {
        score.schedule.label(): score.cycles_per_iter
        for score in result.rungs[0]
    }
    # Every space candidate must land in the baseline even if a future
    # budget turns on the static pruner (pruned candidates never reach
    # rung 0); the gate's whole point is full-space coverage.
    pending: dict[str, object] = {}
    for schedule in space.candidates():
        label = schedule.label()
        if label not in metrics:
            pending[label] = schedule
    # The Fig. 7-9 sweeps (plus the §3.4 double-buffer ablation): axis
    # variants around the paper schedule, measured at the same budget —
    # cached points are free, the rest complete the figure coverage.
    # They are f22 figures (the db1 ablation cannot even assemble on the
    # f44 fragments), so the f44 gate covers its space only.
    if axis_sweeps:
        for field in SCHEDULE_FIELDS:
            for schedule in DEFAULT_SPACE.axis_variants(
                    field, PAPER_SCHEDULE).values():
                label = schedule.label()
                if label not in metrics and label not in pending:
                    pending[label] = schedule
    prefetch_schedules(
        list(pending.values()), device, iters=budget.base_iters, context=ctx,
        tile=tile,
    )
    for label, schedule in pending.items():
        metrics[label] = evaluate_schedule(
            schedule, device, iters=budget.base_iters, context=ctx, tile=tile,
        ).cycles_per_iter
    return {
        "space": result.space_signature,
        "winner": result.best.schedule.label(),
        "metrics": metrics,
    }


def collect_metrics(device_key: str, quick: bool) -> dict:
    """Measure every gated metric fresh; returns one profile payload.

    Metrics are the rung-0 scores of the schedule search (every
    candidate at the same budget) plus the Fig. 7-9 axis variants, all
    simulated cycles per main-loop iteration — deterministic, so any
    drift is a code change, not noise.  Both tile families are measured:
    ``f22`` walks its full space + sweeps, ``f44`` its own space.
    """
    device = DEVICES[device_key]
    budget = SearchBudget(max_rungs=2 if quick else 3)
    ctx = ExecutionContext(device=device)
    # QUICK_SPACE pins double_buffer=2, so it is a valid f44 subset too.
    spaces = {
        "f22": QUICK_SPACE if quick else DEFAULT_SPACE,
        "f44": QUICK_SPACE if quick else F44_SPACE,
    }
    families = {
        tile: _collect_family(device, tile, spaces[tile], budget, ctx,
                              axis_sweeps=(tile == "f22"))
        for tile in GATED_FAMILIES
    }
    return {
        "iters": budget.base_iters,
        "families": families,
    }


def migrate_baseline(baseline: dict, profile: str) -> dict:
    """Lift any historical baseline layout into the schema-2 shape.

    * schema 2 passes through unchanged;
    * the single-profile families layout (``{"device", "iters",
      "families"}``) becomes that payload filed under *profile* — the
      space-signature check downstream catches a quick/full mismatch;
    * the original flat layout (implicit single f22 metric set) is first
      lifted into families, then filed the same way.

    Migrated baselines carry no embedded device spec (``spec: None``),
    which skips the spec-drift check until ``--update-baselines``
    rewrites them.
    """
    if baseline.get("schema") == SCHEMA_VERSION:
        return baseline
    if "families" not in baseline:
        baseline = {
            "device": baseline.get("device"),
            "iters": baseline.get("iters"),
            "families": {
                "f22": {
                    "space": baseline.get("space"),
                    "winner": baseline.get("winner"),
                    "metrics": baseline.get("metrics", {}),
                }
            },
        }
    return {
        "schema": SCHEMA_VERSION,
        "device": baseline.get("device"),
        "spec": None,
        "profiles": {
            profile: {
                "iters": baseline.get("iters"),
                "families": baseline["families"],
            }
        },
    }


def compare(fresh: dict, baseline: dict, tolerance: float) -> tuple[list, list]:
    """(regressions, notes) from comparing *fresh* against *baseline*.

    Both arguments are profile payloads (``{"iters", "families"}``).
    Regressions are gate failures: slower-than-tolerance metrics,
    metrics that disappeared, a changed search winner, or a whole tile
    family the baseline never measured (a silently un-gated kernel is
    exactly the regression this script exists to prevent).  Notes are
    informational: improvements beyond tolerance and brand-new metrics.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for family, fresh_fam in fresh["families"].items():
        base_fam = baseline["families"].get(family)
        if base_fam is None:
            regressions.append(
                f"baseline has no metrics for measured tile family "
                f"'{family}' — its kernels are running un-gated; rerun "
                "with --update-baselines to cover it"
            )
            continue
        if fresh_fam["winner"] != base_fam["winner"]:
            regressions.append(
                f"[{family}] search winner changed: "
                f"{base_fam['winner']} -> {fresh_fam['winner']}"
            )
        for label, base_cycles in base_fam["metrics"].items():
            cycles = fresh_fam["metrics"].get(label)
            if cycles is None:
                regressions.append(f"[{family}] metric disappeared: {label}")
                continue
            ratio = cycles / base_cycles
            if ratio > 1.0 + tolerance:
                regressions.append(
                    f"[{family}] {label}: {cycles:.0f} cycles vs baseline "
                    f"{base_cycles:.0f} ({(ratio - 1) * 100:+.1f}%)"
                )
            elif ratio < 1.0 - tolerance:
                notes.append(
                    f"improvement [{family}] {label}: {cycles:.0f} cycles "
                    f"vs baseline {base_cycles:.0f} "
                    f"({(ratio - 1) * 100:+.1f}%) — "
                    "rerun with --update-baselines to lock it in"
                )
        for label in fresh_fam["metrics"]:
            if label not in base_fam["metrics"]:
                notes.append(
                    f"new metric (no baseline yet): [{family}] {label}"
                )
    return regressions, notes


def _load_baseline(device_key: str, profile: str) -> dict | None:
    path = baseline_path(device_key)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return migrate_baseline(json.load(fh), profile)


def update_baseline(device_key: str, profile: str, fresh_profile: dict) -> str:
    """Merge *fresh_profile* into the device baseline, preserving others."""
    baseline = _load_baseline(device_key, profile) or {
        "schema": SCHEMA_VERSION,
        "device": device_key,
        "spec": None,
        "profiles": {},
    }
    baseline["schema"] = SCHEMA_VERSION
    baseline["device"] = device_key
    baseline["spec"] = DEVICES[device_key].to_dict()
    baseline["profiles"][profile] = fresh_profile
    os.makedirs(BASELINE_DIR, exist_ok=True)
    path = baseline_path(device_key)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--device", default="RTX2070",
                        help="simulated device: registry key, spec name or "
                             "alias (default: RTX2070)")
    parser.add_argument("--quick", action="store_true",
                        help="QUICK_SPACE + 2 rungs (the per-PR CI profile); "
                             "omit for the full grids (the nightly profile)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default: 0.10)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="write the fresh metrics as the new baseline "
                             "profile (other profiles are preserved)")
    parser.add_argument("--inject-regression", type=float, default=None,
                        metavar="PCT",
                        help="inflate measured cycles by PCT%% (gate self-test)")
    parser.add_argument("--out-dir", default=os.path.join(
                            os.path.dirname(__file__), "results"),
                        help="where BENCH_*.json lands (default: results/)")
    args = parser.parse_args(argv)

    try:
        device_key = canonical_device_key(args.device)
    except DeviceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profile = "quick" if args.quick else "full"

    fresh_profile = collect_metrics(device_key, args.quick)
    if args.inject_regression is not None:
        factor = 1.0 + args.inject_regression / 100.0
        for fam in fresh_profile["families"].values():
            fam["metrics"] = {
                label: cycles * factor
                for label, cycles in fam["metrics"].items()
            }
        fresh_profile["injected_regression_pct"] = args.inject_regression
        print(f"injected a synthetic {args.inject_regression:+.1f}% on every metric")

    os.makedirs(args.out_dir, exist_ok=True)
    bench_path = os.path.join(
        args.out_dir, f"BENCH_sched_regression_{_slug(device_key)}.json"
    )
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "schema": SCHEMA_VERSION,
                "device": device_key,
                "spec": DEVICES[device_key].to_dict(),
                "profile": profile,
                **fresh_profile,
            },
            fh, indent=2, sort_keys=True,
        )
    summary = ", ".join(
        f"{family}: {len(fam['metrics'])} metrics, winner {fam['winner']}"
        for family, fam in fresh_profile["families"].items()
    )
    print(f"wrote {bench_path} ({profile} profile; {summary})")

    if args.update_baselines:
        path = update_baseline(device_key, profile, fresh_profile)
        print(f"updated {path} ({profile} profile)")
        return 0

    path = baseline_path(device_key)
    baseline = _load_baseline(device_key, profile)
    if baseline is None:
        print(f"error: no baseline for device {device_key} at {path}; "
              f"generate it with:\n  {_regen_command(device_key, profile)}",
              file=sys.stderr)
        return 2
    if baseline.get("spec") is not None:
        current = DEVICES[device_key].to_dict()
        if baseline["spec"] != current:
            drifted = sorted(
                k for k in set(baseline["spec"]) | set(current)
                if baseline["spec"].get(k) != current.get(k)
            )
            print(f"error: baseline {path} was measured on a different "
                  f"{device_key} spec (drifted fields: {', '.join(drifted)}); "
                  f"regenerate it with:\n  {_regen_command(device_key, profile)}",
                  file=sys.stderr)
            return 2
    base_profile = baseline["profiles"].get(profile)
    if base_profile is None:
        have = sorted(baseline["profiles"]) or ["none"]
        print(f"error: baseline {path} has no '{profile}' profile "
              f"(profiles present: {', '.join(have)}); generate it with:\n"
              f"  {_regen_command(device_key, profile)}",
              file=sys.stderr)
        return 2
    if base_profile.get("iters") != fresh_profile["iters"]:
        print(f"error: baseline {path} was generated at a different budget "
              f"({base_profile.get('iters')} iters vs "
              f"{fresh_profile['iters']}); regenerate it with:\n"
              f"  {_regen_command(device_key, profile)}", file=sys.stderr)
        return 2
    for family, fam in fresh_profile["families"].items():
        base_fam = base_profile["families"].get(family)
        if base_fam is not None and base_fam.get("space") != fam["space"]:
            print(f"error: baseline {path} covers a different {family} "
                  f"space ({base_fam.get('space')} vs {fam['space']}); "
                  f"regenerate it with:\n  {_regen_command(device_key, profile)}",
                  file=sys.stderr)
            return 2

    regressions, notes = compare(fresh_profile, base_profile, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"\nPERF REGRESSION ({len(regressions)} metric(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    gated = sum(len(f["metrics"]) for f in base_profile["families"].values())
    print(f"perf gate OK [{device_key}/{profile}]: {gated} metrics across "
          f"{len(base_profile['families'])} tile families within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
