"""CI perf-regression gate for the simulated main-loop cycle counts.

Runs the ``repro.sched`` schedule search plus the Fig. 7-9 axis sweeps,
then compares every measured cycles-per-iteration metric against the
checked-in ``benchmarks/baselines/sched_<device>.json``:

* a metric more than ``--tolerance`` (default 10%) *slower* than its
  baseline fails the gate (exit 1);
* a metric more than ``--tolerance`` *faster* is reported as an
  improvement — rerun with ``--update-baselines`` to lock it in;
* a changed search winner fails the gate (the simulator is
  deterministic, so the winner only moves when the code does).

The fresh measurements are always written to
``<out-dir>/BENCH_sched_regression_<device>.json`` so CI can upload
them as an artifact whether the gate passes or fails.

``--inject-regression PCT`` inflates every measured cycle count by
PCT percent before comparing — the knob used to demonstrate that the
gate actually fails (e.g. ``--inject-regression 15`` against a 10%
tolerance).

Usage::

    python benchmarks/perf_regression.py --quick                # CI gate
    python benchmarks/perf_regression.py --quick --update-baselines
    python benchmarks/perf_regression.py --quick --inject-regression 15
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.gpusim import DEVICES
from repro.runtime import ExecutionContext
from repro.sched import (
    DEFAULT_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SCHEDULE_FIELDS,
    SearchBudget,
    evaluate_schedule,
    prefetch_schedules,
    successive_halving,
)

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


def _slug(device_key: str) -> str:
    return device_key.lower()


def baseline_path(device_key: str) -> str:
    return os.path.join(BASELINE_DIR, f"sched_{_slug(device_key)}.json")


def collect_metrics(device_key: str, quick: bool) -> dict:
    """Measure every gated metric fresh; returns the payload dict.

    Metrics are the rung-0 scores of the schedule search (every
    candidate at the same budget) plus the Fig. 7-9 axis variants, all
    simulated cycles per main-loop iteration — deterministic, so any
    drift is a code change, not noise.
    """
    device = DEVICES[device_key]
    space = QUICK_SPACE if quick else DEFAULT_SPACE
    budget = SearchBudget(max_rungs=2 if quick else 3)
    ctx = ExecutionContext(device=device)

    result = successive_halving(space, device, budget=budget, context=ctx)
    metrics: dict[str, float] = {
        score.schedule.label(): score.cycles_per_iter
        for score in result.rungs[0]
    }
    # Every space candidate must land in the baseline even if a future
    # budget turns on the static pruner (pruned candidates never reach
    # rung 0); the gate's whole point is full-space coverage.
    pending: dict[str, object] = {}
    for schedule in space.candidates():
        label = schedule.label()
        if label not in metrics:
            pending[label] = schedule
    # The Fig. 7-9 sweeps (plus the §3.4 double-buffer ablation): axis
    # variants around the paper schedule, measured at the same budget —
    # cached points are free, the rest complete the figure coverage.
    for field in SCHEDULE_FIELDS:
        for schedule in DEFAULT_SPACE.axis_variants(field, PAPER_SCHEDULE).values():
            label = schedule.label()
            if label not in metrics and label not in pending:
                pending[label] = schedule
    prefetch_schedules(
        list(pending.values()), device, iters=budget.base_iters, context=ctx,
    )
    for label, schedule in pending.items():
        metrics[label] = evaluate_schedule(
            schedule, device, iters=budget.base_iters, context=ctx,
        ).cycles_per_iter
    return {
        "device": device_key,
        "space": result.space_signature,
        "iters": budget.base_iters,
        "winner": result.best.schedule.label(),
        "metrics": metrics,
    }


def compare(fresh: dict, baseline: dict, tolerance: float) -> tuple[list, list]:
    """(regressions, notes) from comparing *fresh* against *baseline*.

    Regressions are gate failures: slower-than-tolerance metrics,
    metrics that disappeared, or a changed search winner.  Notes are
    informational: improvements beyond tolerance and brand-new metrics.
    """
    regressions: list[str] = []
    notes: list[str] = []
    if fresh["winner"] != baseline["winner"]:
        regressions.append(
            f"search winner changed: {baseline['winner']} -> {fresh['winner']}"
        )
    for label, base_cycles in baseline["metrics"].items():
        cycles = fresh["metrics"].get(label)
        if cycles is None:
            regressions.append(f"metric disappeared: {label}")
            continue
        ratio = cycles / base_cycles
        if ratio > 1.0 + tolerance:
            regressions.append(
                f"{label}: {cycles:.0f} cycles vs baseline "
                f"{base_cycles:.0f} ({(ratio - 1) * 100:+.1f}%)"
            )
        elif ratio < 1.0 - tolerance:
            notes.append(
                f"improvement {label}: {cycles:.0f} cycles vs baseline "
                f"{base_cycles:.0f} ({(ratio - 1) * 100:+.1f}%) — "
                "rerun with --update-baselines to lock it in"
            )
    for label in fresh["metrics"]:
        if label not in baseline["metrics"]:
            notes.append(f"new metric (no baseline yet): {label}")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--device", default="RTX2070", choices=sorted(DEVICES),
                        help="simulated device (default: RTX2070)")
    parser.add_argument("--quick", action="store_true",
                        help="QUICK_SPACE + 2 rungs (the CI configuration)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default: 0.10)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="write the fresh metrics as the new baseline")
    parser.add_argument("--inject-regression", type=float, default=None,
                        metavar="PCT",
                        help="inflate measured cycles by PCT%% (gate self-test)")
    parser.add_argument("--out-dir", default=os.path.join(
                            os.path.dirname(__file__), "results"),
                        help="where BENCH_*.json lands (default: results/)")
    args = parser.parse_args(argv)

    fresh = collect_metrics(args.device, args.quick)
    if args.inject_regression is not None:
        factor = 1.0 + args.inject_regression / 100.0
        fresh["metrics"] = {
            label: cycles * factor for label, cycles in fresh["metrics"].items()
        }
        fresh["injected_regression_pct"] = args.inject_regression
        print(f"injected a synthetic {args.inject_regression:+.1f}% on every metric")

    os.makedirs(args.out_dir, exist_ok=True)
    bench_path = os.path.join(
        args.out_dir, f"BENCH_sched_regression_{_slug(args.device)}.json"
    )
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(fresh, fh, indent=2, sort_keys=True)
    print(f"wrote {bench_path} ({len(fresh['metrics'])} metrics, "
          f"winner {fresh['winner']})")

    if args.update_baselines:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        with open(baseline_path(args.device), "w", encoding="utf-8") as fh:
            json.dump(fresh, fh, indent=2, sort_keys=True)
        print(f"updated {baseline_path(args.device)}")
        return 0

    path = baseline_path(args.device)
    if not os.path.exists(path):
        print(f"error: no baseline at {path}; run with --update-baselines first",
              file=sys.stderr)
        return 2
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("space") != fresh["space"] or baseline.get("iters") != fresh["iters"]:
        print(f"error: baseline {path} was generated for a different "
              f"space/budget ({baseline.get('space')} @ {baseline.get('iters')} "
              f"iters vs {fresh['space']} @ {fresh['iters']}); regenerate it "
              "with --update-baselines", file=sys.stderr)
        return 2

    regressions, notes = compare(fresh, baseline, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"\nPERF REGRESSION ({len(regressions)} metric(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"perf gate OK: {len(baseline['metrics'])} metrics within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
