"""§2.3/§4.2: batched GEMM as the Winograd subproblem.

Two measurements on the simulated RTX 2070:

1. the batched-GEMM kernel (the Winograd machinery minus transforms)
   against the Winograd main loop — quantifying the ITF's "3.1% more
   pressure on the float pipe" (§4.2) plus the mask bookkeeping;
2. the batched-GEMM kernel's own FFMA throughput as a fraction of peak,
   showing the §4.3 techniques carry over to plain batched GEMM.
"""

from harness import DEVICES, emit, main_loop_measurement

from repro.common import format_table
from repro.gpusim import GlobalMemory, simulate_resident_blocks
from repro.kernels import BatchedGemmKernel


def gemm_steady_state(iters: int = 3):
    device = DEVICES["RTX2070"]

    def run(n_iters):
        gen = BatchedGemmKernel(16, 64, 32, 8 * n_iters)
        kernel = gen.build(main_loop_only=True, iters=n_iters)
        gmem = GlobalMemory()
        # Mirror the Winograd measurement: the A ("filter") operand is
        # re-read by every N-tile block and lives in the L2 working set.
        a_ptr = gmem.alloc(4 * (8 * n_iters + 8) * 16 * 64, l2_resident=True)
        b_ptr = gmem.alloc(4 * (8 * n_iters + 8) * 16 * 32)
        c_ptr = gmem.alloc(4 * 16 * 64 * 32)
        return simulate_resident_blocks(
            kernel, device,
            params={"a_ptr": a_ptr, "b_ptr": b_ptr, "c_ptr": c_ptr},
            gmem=gmem, threads_per_block=256,
        ).counters

    long_run, short_run = run(iters), run(iters - 2)
    d_cycles = long_run.cycles - short_run.cycles
    d_ffma = long_run.ffma_instrs - short_run.ffma_instrs
    d_busy = long_run.fma_pipe_busy - short_run.fma_pipe_busy
    tflops = (
        d_ffma * 32 * 2 / (d_cycles / (device.clock_ghz * 1e9)) / 1e12
        * device.num_sms
    )
    return {
        "cycles_per_iter": d_cycles / 2.0,
        "tflops": tflops,
        "sol": d_busy / (d_cycles * device.schedulers_per_sm),
    }


def _run():
    gemm = gemm_steady_state()
    wino = main_loop_measurement("RTX2070")
    rows = [
        ("cycles / bc-iteration", gemm["cycles_per_iter"], wino.cycles_per_iter),
        ("device TFLOPS", gemm["tflops"], wino.tflops),
        ("FP32-pipe SOL", gemm["sol"], wino.sol),
        ("Winograd overhead", "-",
         wino.cycles_per_iter / gemm["cycles_per_iter"] - 1.0),
    ]
    text = format_table(
        ["metric", "batched GEMM", "Winograd main loop"], rows,
        title="Batched GEMM vs Winograd main loop (RTX2070, simulated)",
        float_fmt="{:.3f}",
    )
    emit("gemm_subproblem", text)
    return gemm, wino


def test_gemm_subproblem(benchmark):
    gemm, wino = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The GEMM loop must be at least as fast; the Winograd overhead (ITF
    # FADDs + mask unpack) should be a few percent (§4.2: ~3.1% on the
    # float pipe alone).
    assert gemm["cycles_per_iter"] <= wino.cycles_per_iter
    overhead = wino.cycles_per_iter / gemm["cycles_per_iter"] - 1.0
    assert 0.0 <= overhead < 0.15
    assert gemm["sol"] > 0.85


if __name__ == "__main__":
    _run()
