#!/usr/bin/env python
"""Per-layer performance study over the paper's workload (Table 1).

For every 3×3 ResNet layer at batch 32 and 128, on both simulated
devices: the layer model's predicted time, effective TFLOPS, SOL, and
the speedup over the modelled cuDNN baselines — a condensed view of
Tables 2/6 and Figures 10-13.  Ends with the §8.1 fused-vs-nonfused
break-even and the algorithm choice per layer.

Run:  python examples/resnet_layer_study.py      (~1 min of simulation)
"""

from repro.common import format_table
from repro.gpusim import RTX2070, V100
from repro.models import resnet_layer
from repro.perfmodel import (
    break_even_k,
    cudnn_time,
    faster_variant,
    our_layer_performance,
    workspace_mb,
)


def study(device) -> None:
    rows = []
    for layer in ("Conv2", "Conv3", "Conv4", "Conv5"):
        for batch in (32, 128):
            p = resnet_layer(layer, batch)
            ours = our_layer_performance(p, device)
            wino = cudnn_time(p, device, "WINOGRAD")
            gemm = cudnn_time(p, device, "IMPLICIT_PRECOMP_GEMM")
            rows.append((
                p.name,
                f"{ours.time_s * 1e3:.3f}",
                f"{ours.tflops_effective:.1f}",
                f"{100 * ours.sol_main_loop:.0f}%",
                f"{wino / ours.time_s:.2f}x",
                f"{gemm / ours.time_s:.2f}x",
                f"{workspace_mb(p, 'OURS'):.2f}",
            ))
    print(format_table(
        ["layer", "ms", "eff.TFLOPS", "SOL", "vs cuDNN-wino",
         "vs GEMM", "ws MB"],
        rows,
        title=f"{device.name} — fused Winograd layer model",
    ))
    print()


def main() -> None:
    for device in (V100, RTX2070):
        study(device)

    print("Fused F(2x2) vs non-fused F(4x4) (paper §8.1):")
    for device in (V100, RTX2070):
        print(f"  {device.name}: break-even K = {break_even_k(device):.0f} "
              f"(paper: {129 if device is V100 else 127})")
    for layer in ("Conv2", "Conv3", "Conv4", "Conv5"):
        p = resnet_layer(layer, 64)
        print(f"  {p.name} (K={p.k}): {faster_variant(p, V100)}")


if __name__ == "__main__":
    main()
