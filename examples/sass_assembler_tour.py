#!/usr/bin/env python
"""A tour of the TuringAs reimplementation (paper §5).

Writes a small SAXPY-like kernel using the assembler's features —
directives, register name mapping, inline Python codegen, explicit
control codes — assembles it, round-trips it through a ``.cubin`` ELF,
disassembles it, and finally runs it on the simulated GPU.

Run:  python examples/sass_assembler_tour.py
"""

import struct

import numpy as np

from repro.gpusim import GlobalMemory, V100, run_grid
from repro.sass import assemble, decode_instruction, encode_instruction, parse_line, read_cubin, write_cubin

SRC = """
// y[i] = a*x[i] + y[i], one element per thread, with an unrolled tail
// computed by inline Python (the TuringAs trick for long FFMA chains).
.kernel saxpy
.registers 16
.param 8 x_ptr
.param 8 y_ptr
.param 4 a
.alias offset R1

S2R R0, SR_TID.X;
SHF.L.U32 offset, R0, 0x2, RZ;            // byte offset = 4*tid
MOV R2, param:x_ptr;
MOV R3, c[0x0][0x164];
IADD3 R2, R2, offset, RZ;
MOV R4, param:y_ptr;
MOV R5, c[0x0][0x16c];
IADD3 R4, R4, offset, RZ;
LDG.E R6, [R2];
LDG.E R7, [R4];
MOV R8, param:a;
FFMA R7, R6, R8, R7;
{%
# Inline Python: apply the scale twice more, demonstrating codegen.
for _ in range(2):
    emit("FFMA R7, R7, 1.0, RZ;")
%}
STG.E [R4], R7;
EXIT;
"""


def main() -> None:
    kernel = assemble(SRC, auto_schedule=True, strict=True)
    print(f"assembled {kernel.num_instructions} instructions, "
          f"{kernel.meta.registers} registers")

    # Every instruction is a 128-bit word (paper Fig. 6); show one.
    instr = parse_line("[B0-----:R-:W1:Y:S04] @!P2 FFMA R0, R64, R80.reuse, R0;")
    word = encode_instruction(instr)
    print(f"\n{instr.text()}")
    print(f"  encodes to {word:#034x}")
    print(f"  decodes to {decode_instruction(word).text()}")

    # The cubin container round-trips through a real ELF64 image.
    blob = write_cubin(kernel)
    loaded = read_cubin(blob)
    print(f"\ncubin: {len(blob)} bytes, ELF magic {blob[:4]!r}, "
          f"kernel {loaded.meta.name!r}")

    print("\ndisassembly (first 8 instructions):")
    for line in kernel.disassemble().splitlines()[:8]:
        print("   " + line)

    # Launch on the simulated V100.
    gmem = GlobalMemory()
    x = np.arange(256, dtype=np.float32)
    y = np.ones(256, dtype=np.float32)
    x_ptr = gmem.alloc_array(x)
    y_ptr = gmem.alloc_array(y)
    a_bits = struct.unpack("<I", struct.pack("<f", 2.0))[0]
    result = run_grid(loaded, V100, grid=1, threads_per_block=256,
                      params={"x_ptr": x_ptr, "y_ptr": y_ptr, "a": a_bits},
                      gmem=gmem)
    out = gmem.read_array(y_ptr, (256,))
    expect = 2.0 * x + 1.0
    print(f"\nsimulated run: {result.counters.cycles} cycles, "
          f"max |err| = {np.abs(out - expect).max():.2e}")


if __name__ == "__main__":
    main()
