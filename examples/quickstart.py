#!/usr/bin/env python
"""Quickstart: Winograd convolution three ways.

1. the plain algorithm (`repro.winograd.winograd_conv2d_nchw`);
2. the unified `conv2d` dispatcher with every algorithm;
3. the full paper stack — generate the SASS kernel, assemble it with the
   TuringAs reimplementation, and execute it on the simulated V100 —
   checked against direct convolution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.common import ConvProblem, make_rng, random_activation, random_filter
from repro.convolution import ALGORITHMS, conv2d
from repro.gpusim import V100
from repro.kernels import run_fused_sass_conv
from repro.winograd import f23, winograd_conv2d_nchw


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The algorithm: F(2×2, 3×3) cuts multiplications 2.25×.
    # ------------------------------------------------------------------
    t = f23()
    print("F(2x2, 3x3):", t.direct_multiplies_2d(), "direct multiplies ->",
          t.tile_multiplies_2d(), f"({t.reduction_2d():.2f}x reduction)")

    prob = ConvProblem(n=2, c=8, h=12, w=12, k=16, name="demo")
    rng = make_rng(42)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)

    y_wino = winograd_conv2d_nchw(x, f, m=2)
    y_direct = conv2d(x, f, algo="DIRECT")
    print(f"winograd vs direct: max |err| = {np.abs(y_wino - y_direct).max():.2e}")

    # ------------------------------------------------------------------
    # 2. Every algorithm through one entry point.
    # ------------------------------------------------------------------
    for algo in ALGORITHMS:
        err = np.abs(conv2d(x, f, algo=algo) - y_direct).max()
        print(f"  {algo:22s} max |err| = {err:.2e}")

    # ------------------------------------------------------------------
    # 3. The paper stack: SASS kernel on the simulated V100.
    #    (N multiple of 32, C of 8, K of 64 — the kernel's sweet spot.)
    # ------------------------------------------------------------------
    prob = ConvProblem(n=32, c=8, h=4, w=4, k=64, name="sass-demo")
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y_sass, counters = run_fused_sass_conv(x, f, device=V100)
    err = np.abs(y_sass - conv2d(x, f, algo="DIRECT")).max()
    print(f"\nSASS kernel on simulated {V100.name}:")
    print(f"  result max |err| = {err:.2e}")
    print(f"  cycles = {counters.cycles}, warp FFMAs = {counters.ffma_instrs}")
    print(f"  shared-memory bank-conflict cycles = {counters.smem_conflict_cycles}")
    print(f"  register-bank conflicts = {counters.reg_bank_conflicts}")


if __name__ == "__main__":
    main()
