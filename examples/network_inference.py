#!/usr/bin/env python
"""Run a small CNN stack through the simulated Winograd kernel.

A three-layer 3×3 network (the shape of a ResNet basic-block column) is
executed twice — once with NumPy direct convolution, once with each conv
running as the generated SASS kernel on the simulated V100 (ReLU applied
host-side between layers, as a framework would fuse or launch
separately) — and the outputs are compared end to end.

Run:  python examples/network_inference.py     (~1 min of simulation)
"""

import numpy as np

from repro.common import ConvProblem, make_rng
from repro.convolution import direct_conv2d
from repro.gpusim import V100
from repro.kernels import run_fused_sass_conv

LAYERS = [
    # (C_in, C_out) at an 8×8 feature map, batch 32 (kernel sweet spot).
    (8, 64),
    (64, 64),
    (64, 128),
]
H = W = 8
N = 32


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def main() -> None:
    rng = make_rng(2024)
    x = (rng.random((N, LAYERS[0][0], H, W), dtype=np.float32) - 0.5).astype(
        np.float32
    )
    filters = [
        ((rng.random((c_out, c_in, 3, 3), dtype=np.float32) - 0.5) * 0.2).astype(
            np.float32
        )
        for c_in, c_out in LAYERS
    ]

    # Reference path: NumPy direct convolution.
    ref = x
    for f in filters:
        ref = relu(direct_conv2d(ref, f))

    # Simulated path: each conv is the generated SASS kernel on the V100.
    sim = x
    total_cycles = 0
    for li, f in enumerate(filters):
        prob = ConvProblem(n=N, c=f.shape[1], h=H, w=W, k=f.shape[0],
                           name=f"layer{li}")
        y, counters = run_fused_sass_conv(sim, f, device=V100, prob=prob)
        sim = relu(y)
        total_cycles += counters.cycles
        print(f"layer {li}: C{f.shape[1]:>3} -> K{f.shape[0]:>3}  "
              f"{counters.cycles:>7} cycles  "
              f"{counters.ffma_instrs:>6} warp FFMAs  "
              f"conflicts: smem={counters.smem_conflict_cycles} "
              f"reg={counters.reg_bank_conflicts}")

    err = np.abs(sim - ref).max()
    print(f"\nnetwork output: shape {sim.shape}, max |err| vs NumPy = {err:.2e}")
    print(f"total simulated cycles: {total_cycles} "
          f"({total_cycles / (V100.clock_ghz * 1e9) * 1e6:.1f} us of V100 time "
          "per simulated-SM group)")
    assert err < 1e-4, "simulated network diverged from the reference"
    print("OK — the SASS kernel is a drop-in conv layer.")


if __name__ == "__main__":
    main()
