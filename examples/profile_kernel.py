#!/usr/bin/env python
"""Profile the Winograd main loop the way the paper profiles it (§7.2).

Runs the main-loop microkernel on one simulated RTX 2070 SM and prints a
Nsight-Compute-style report: Speed Of Light, compute workload, scheduler
statistics and memory workload — the numbers behind Figures 10-11.

Run:  python examples/profile_kernel.py
"""

from repro.common import ConvProblem
from repro.gpusim import GlobalMemory, RTX2070, profile_report, simulate_resident_blocks
from repro.kernels import Tunables, WinogradF22Kernel


def main() -> None:
    prob = ConvProblem(n=32, c=32, h=16, w=16, k=64, name="profiled")
    gen = WinogradF22Kernel(prob, Tunables())
    kernel = gen.build(main_loop_only=True, iters=4)

    gmem = GlobalMemory(size=128 << 20)
    in_ptr = gmem.alloc(4 * (prob.c + 8) * prob.h * prob.w * prob.n)
    fil_ptr = gmem.alloc(4 * (prob.c + 8) * 16 * prob.k, l2_resident=True)
    out_ptr = gmem.alloc(4 * prob.k * prob.out_h * prob.out_w * prob.n)

    result = simulate_resident_blocks(
        kernel, RTX2070, threads_per_block=256, gmem=gmem,
        params={"in_ptr": in_ptr, "fil_ptr": fil_ptr, "out_ptr": out_ptr},
    )
    report = profile_report(
        result.counters, RTX2070,
        title=f"winograd_f22 main loop × 4 iterations on {RTX2070.name}",
    )
    print(report.render())
    print()
    print("The paper's Figures 10-11 plot the 'SM [%]' line per layer;")
    print("'Shared-memory conflict cycles' and 'Register bank conflicts'")
    print("must read 0 for the Fig. 3 / Fig. 4 layouts to be working.")


if __name__ == "__main__":
    main()
