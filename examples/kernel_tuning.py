#!/usr/bin/env python
"""Reproduce the paper's SASS-level tuning studies on the simulator (§6).

Sweeps the three scheduling knobs of the generated Winograd kernel —
yield strategy (Fig. 7), LDG interleave (Fig. 8), STS interleave
(Fig. 9) — plus the shared-memory-layout ablation, measuring
steady-state main-loop throughput on a simulated RTX 2070 SM.

Run:  python examples/kernel_tuning.py          (~30 s of simulation)
"""

from repro.common import ConvProblem, format_table
from repro.gpusim import RTX2070
from repro.kernels import Tunables, measure_main_loop

SURROGATE = ConvProblem(n=32, c=32, h=16, w=16, k=64, name="tuning")


def sweep(title: str, variants: dict[str, dict]) -> None:
    rows = []
    baseline = None
    for label, kwargs in variants.items():
        m = measure_main_loop(SURROGATE, device=RTX2070,
                              tunables=Tunables(**kwargs))
        if baseline is None:
            baseline = m.cycles_per_iter
        rows.append((
            label,
            f"{m.cycles_per_iter:.0f}",
            f"{m.tflops:.2f}",
            f"{100 * m.sol:.1f}%",
            f"{baseline / m.cycles_per_iter:.3f}x",
        ))
    print(format_table(
        ["variant", "cycles/iter", "TFLOPS", "SOL", "vs first"], rows,
        title=title,
    ))
    print()


def main() -> None:
    print(f"device: {RTX2070.name}, FP32 peak "
          f"{RTX2070.peak_fp32_tflops:.2f} TFLOPS\n")

    sweep("Yield-flag strategy (paper Fig. 7: Natural ~1.09-1.11x best)", {
        "Natural (ours)": dict(yield_strategy="natural"),
        "NVCC (every 8)": dict(yield_strategy="nvcc8"),
        "cuDNN (every 7)": dict(yield_strategy="cudnn7"),
    })

    sweep("LDG interleave distance (paper Fig. 8: LDG8 up to 1.24x)", {
        "LDG8 (ours)": dict(ldg_interleave=8),
        "LDG4": dict(ldg_interleave=4),
        "LDG2 (cuDNN)": dict(ldg_interleave=2),
    })

    sweep("STS interleave distance (paper Fig. 9: STS6 ~ +2%)", {
        "STS6 (ours)": dict(sts_interleave=6),
        "STS4": dict(sts_interleave=4),
        "STS2 (cuDNN/NVCC)": dict(sts_interleave=2),
    })

    sweep("Shared-memory fragment layout (paper §4.3)", {
        "transposed (Table 4)": dict(smem_layout="transposed"),
        "tile-major (naive)": dict(smem_layout="tile_major"),
    })

    sweep("Cache block size (paper §3.3)", {
        "bk=64 (ours)": dict(bk=64),
        "bk=32 (cuDNN)": dict(bk=32),
    })


if __name__ == "__main__":
    main()
