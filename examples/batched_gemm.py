#!/usr/bin/env python
"""The batched-GEMM subproblem as a standalone kernel (paper §2.3).

"Batched GEMM is a subproblem of Winograd convolution.  All the
techniques we have developed in Section 4.3 can be applied to batched
GEMM."  This example runs the standalone 16-way batched-GEMM kernel —
the Winograd machinery minus transforms and masks — on the simulated
V100, verifies it against NumPy, and prints its profile next to the
Winograd main loop's.

Run:  python examples/batched_gemm.py
"""

import numpy as np

from repro.common import make_rng
from repro.gpusim import GlobalMemory, V100, profile_report, run_grid
from repro.kernels import BatchedGemmKernel

E, M, N, KD = 16, 128, 64, 64


def main() -> None:
    gen = BatchedGemmKernel(E, M, N, KD)
    kernel = gen.build()
    print(f"batched GEMM kernel: C[e,{M},{N}] = Σ_kd A[e,kd,m]·B[e,kd,n] "
          f"over {E} batches, Kd={KD}")
    print(f"  grid {gen.grid}, {kernel.num_instructions} instructions, "
          f"{gen.num_regs} registers (the Table-5 budget), "
          f"{gen.smem_bytes // 1024} KB smem\n")

    rng = make_rng(77)
    a = (rng.random((KD, E, M), dtype=np.float32) - 0.5).astype(np.float32)
    b = (rng.random((KD, E, N), dtype=np.float32) - 0.5).astype(np.float32)

    gmem = GlobalMemory()
    params, c_ptr = gen.alloc_buffers(gmem, a, b)
    result = run_grid(kernel, V100, grid=gen.grid, threads_per_block=256,
                      params=params, gmem=gmem)
    got = gmem.read_array(c_ptr, (E, M, N))
    err = np.abs(got - gen.reference(a, b)).max()
    print(f"result max |err| vs NumPy einsum = {err:.2e}\n")

    print(profile_report(result.counters, V100,
                         title="batched GEMM on the simulated V100").render())


if __name__ == "__main__":
    main()
