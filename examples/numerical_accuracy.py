#!/usr/bin/env python
"""Numerical behaviour of Winograd variants (§8.1's F(6×6) caveat).

"Other variants like F(6×6, 3×3) may bring numerical issue" — the
transform matrices grow increasingly ill-conditioned with tile size, so
the 4× (F(4×4)) and 9× (F(6×6)) multiplication reductions trade off
against fp32 accuracy.  This example measures the max relative error of
each variant against an fp64 direct convolution, plus the condition
number of the combined transform, on a realistic layer shape.

Run:  python examples/numerical_accuracy.py
"""

import numpy as np

from repro.common import ConvProblem, format_table, make_rng, random_activation, random_filter
from repro.convolution import direct_conv2d
from repro.winograd import get_transform, winograd_conv2d_nchw


def transform_condition(m: int) -> float:
    """Condition number of the end-to-end tile map (a growth proxy)."""
    t = get_transform(m, 3, dtype=np.float64)
    return float(
        np.linalg.cond(t.at) * np.linalg.cond(t.g) * np.linalg.cond(t.bt)
    )


def main() -> None:
    prob = ConvProblem(n=4, c=64, h=24, w=24, k=16, name="accuracy")
    rng = make_rng(123)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)

    ref64 = direct_conv2d(x.astype(np.float64), f.astype(np.float64))
    scale = np.abs(ref64).max()

    rows = []
    for m in (2, 4, 6):
        y = winograd_conv2d_nchw(x, f, m=m)
        err = np.abs(y - ref64).max() / scale
        t = get_transform(m, 3)
        rows.append((
            f"F({m}x{m}, 3x3)",
            f"{t.reduction_2d():.2f}x",
            f"{err:.2e}",
            f"{transform_condition(m):.1f}",
        ))
    y_direct = direct_conv2d(x, f)
    rows.append((
        "direct fp32",
        "1.00x",
        f"{np.abs(y_direct - ref64).max() / scale:.2e}",
        "-",
    ))

    print(format_table(
        ["variant", "mult. reduction", "max rel. error", "transform cond."],
        rows,
        title=f"Winograd accuracy vs fp64 direct conv ({prob.label()}, fp32)",
    ))
    print()
    print("F(2x2) matches direct fp32 accuracy; F(4x4) loses ~one digit;")
    print("F(6x6) loses another — the paper's reason (§8.1) for pairing the")
    print("fused kernel with F(2x2) and the non-fused fallback with F(4x4).")


if __name__ == "__main__":
    main()
