"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments without the ``wheel`` package (offline
machines), where ``pip install -e . --no-build-isolation`` needs the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
