"""End-to-end: generated SASS kernel → assembler → cubin → simulator → oracle.

These are the capstone tests of DESIGN.md §5: the complete paper stack
(kernel generator, TuringAs, the simulated GPU) must agree bit-for-bit
(fp32) with direct convolution.
"""

import numpy as np
import pytest

from repro.common import ConvProblem, conv_tolerance, make_rng, random_activation, random_filter
from repro.common.layouts import kcrs_to_crsk, khwn_to_nkhw, nchw_to_chwn
from repro.convolution import direct_conv2d
from repro.gpusim import GlobalMemory, V100, run_grid
from repro.kernels import Tunables, WinogradF22Kernel, run_fused_sass_conv
from repro.sass import read_cubin, write_cubin
from repro.winograd import FusedWinogradConv

pytestmark = pytest.mark.slow


def _check(prob, tunables=Tunables(), seed=3, device=V100):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y, counters = run_fused_sass_conv(x, f, device=device, tunables=tunables)
    ref = direct_conv2d(x, f)
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 8)
    return counters


def test_single_iteration_single_kblock():
    c = _check(ConvProblem(n=32, c=8, h=4, w=4, k=64))
    assert c.smem_conflict_cycles == 0  # Fig. 3 + Fig. 5 goal, end to end
    assert c.reg_bank_conflicts == 0  # Fig. 4 register plan


def test_multi_iteration_odd_output():
    _check(ConvProblem(n=32, c=16, h=6, w=5, k=64))


def test_two_k_blocks():
    _check(ConvProblem(n=32, c=8, h=4, w=4, k=128))


def test_batch_64():
    _check(ConvProblem(n=64, c=8, h=4, w=4, k=64))


def test_bk32_variant():
    _check(ConvProblem(n=32, c=8, h=4, w=4, k=32), Tunables(bk=32))


@pytest.mark.parametrize("strategy", ["nvcc8", "cudnn7"])
def test_yield_strategies_do_not_change_results(strategy):
    """Scheduling knobs are performance-only: results must be identical."""
    prob = ConvProblem(n=32, c=8, h=4, w=4, k=64)
    rng = make_rng(7)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y_nat, _ = run_fused_sass_conv(x, f, tunables=Tunables())
    y_alt, _ = run_fused_sass_conv(
        x, f, tunables=Tunables(yield_strategy=strategy, ldg_interleave=2,
                                sts_interleave=2)
    )
    np.testing.assert_array_equal(y_nat, y_alt)


def test_kernel_matches_fused_numpy_model_bitwise_shape():
    """SASS kernel vs the Algorithm-1 NumPy model: same algorithm, same
    transforms — results agree to within reassociation round-off."""
    prob = ConvProblem(n=32, c=8, h=4, w=4, k=64)
    rng = make_rng(11)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y_sass, _ = run_fused_sass_conv(x, f)
    y_np = khwn_to_nkhw(FusedWinogradConv()(nchw_to_chwn(x), kcrs_to_crsk(f)))
    np.testing.assert_allclose(y_sass, y_np, atol=1e-5)


def test_cubin_round_trip_execution():
    """Assemble → write cubin → read cubin → simulate: the ELF container
    carries everything needed to launch."""
    prob = ConvProblem(n=32, c=8, h=4, w=4, k=64)
    gen = WinogradF22Kernel(prob)
    loaded = read_cubin(write_cubin(gen.build()))
    assert loaded.meta.registers == 253

    rng = make_rng(5)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    x_chwn = nchw_to_chwn(x)
    f_t = FusedWinogradConv().transform_filters(kcrs_to_crsk(f))
    gmem = GlobalMemory()
    params, out_ptr = gen.alloc_buffers(gmem, x_chwn, f_t)
    run_grid(loaded, V100, grid=gen.grid, threads_per_block=256,
             params=params, gmem=gmem)
    y = khwn_to_nkhw(gmem.read_array(out_ptr, (prob.k, prob.out_h, prob.out_w, prob.n)))
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=conv_tolerance(prob) * 8)


# ---------------------------------------------------------------------------
# F(4×4,3×3): the generalized kernel through the same stack
# ---------------------------------------------------------------------------
def _check_f44(prob, seed=3, device=V100):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y, counters = run_fused_sass_conv(x, f, device=device, tile="f44")
    ref = direct_conv2d(x, f)
    # f43's larger transform constants cost a few extra bits of round-off
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 64)
    return counters


def test_f44_single_kblock():
    _check_f44(ConvProblem(n=32, c=8, h=8, w=8, k=16))


def test_f44_two_k_blocks_multi_iteration():
    _check_f44(ConvProblem(n=32, c=16, h=8, w=8, k=32))


def test_f44_odd_output_uses_both_mask_words():
    # 7×7 outputs on 4×4 tiles: every right/bottom edge tile is partial,
    # so the two-word predicate masks are exercised end to end.
    _check_f44(ConvProblem(n=32, c=8, h=7, w=7, k=16))


def test_f44_kernel_matches_fused_numpy_model():
    prob = ConvProblem(n=32, c=8, h=8, w=8, k=16)
    rng = make_rng(11)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y_sass, _ = run_fused_sass_conv(x, f, tile="f44")
    y_np = khwn_to_nkhw(
        FusedWinogradConv(tile="f44")(nchw_to_chwn(x), kcrs_to_crsk(f))
    )
    np.testing.assert_allclose(y_sass, y_np, atol=1e-4)
