"""Acceptance: AUTO serves every Table 1 layer shape, and falls back.

The issue's acceptance criteria, verbatim: ``conv2d(x, f, algo="AUTO")``
matches ``WINOGRAD_REFERENCE`` within ``conv_tolerance`` on all Table 1
ResNet layers *and* on a shape the fused kernel cannot run (5×5
filter), and a repeated call on the same signature is a plan-cache hit
with zero new trials per ``get_dispatch_stats()``.

Layers run at a reduced batch (N=2): batch size changes the trial cost,
not which code paths the dispatcher exercises — the layer shapes (C, H,
W, K) are Table 1's.
"""

import numpy as np
import pytest

from repro.common import ConvProblem, conv_tolerance, make_rng, random_activation, random_filter
from repro.convolution import (
    clear_plan_cache,
    conv2d,
    get_dispatch_stats,
    reset_dispatch_stats,
)
from repro.models.resnet import RESNET_LAYER_SHAPES


@pytest.fixture(autouse=True)
def _fresh_dispatcher():
    reset_dispatch_stats()
    clear_plan_cache()
    yield
    reset_dispatch_stats()
    clear_plan_cache()


@pytest.mark.parametrize("layer", sorted(RESNET_LAYER_SHAPES))
def test_auto_on_table1_layers_with_cache_hit(layer):
    shape = RESNET_LAYER_SHAPES[layer]
    prob = ConvProblem(n=2, r=3, s=3, pad=1, name=f"{layer}N2", **shape)
    rng = make_rng(99)
    x, f = random_activation(prob, rng), random_filter(prob, rng)
    ref = conv2d(x, f, algo="WINOGRAD_REFERENCE")

    y = conv2d(x, f, algo="AUTO")
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)
    first = get_dispatch_stats()
    assert first.cache_misses == 1
    assert first.trials_run > 0

    # Same signature again: a plan-cache hit with zero new trials.
    y2 = conv2d(x, f, algo="AUTO")
    np.testing.assert_allclose(y2, ref, atol=conv_tolerance(prob) * 4)
    second = get_dispatch_stats()
    assert second.cache_hits == 1
    assert second.trials_run == first.trials_run


def test_auto_5x5_fallback_past_the_fused_kernel():
    prob = ConvProblem(n=2, c=8, h=12, w=12, k=4, r=5, s=5, pad=2)
    rng = make_rng(7)
    x, f = random_activation(prob, rng), random_filter(prob, rng)

    y = conv2d(x, f, pad=2, algo="AUTO")
    ref = conv2d(x, f, pad=2, algo="DIRECT")
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)

    stats = get_dispatch_stats()
    assert stats.excluded.get("WINOGRAD") == 1
    assert stats.excluded.get("WINOGRAD_NONFUSED") == 1

    y2 = conv2d(x, f, pad=2, algo="AUTO")
    np.testing.assert_allclose(y2, ref, atol=conv_tolerance(prob) * 4)
    after = get_dispatch_stats()
    assert after.cache_hits == 1
    assert after.trials_run == stats.trials_run
