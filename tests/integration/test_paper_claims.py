"""Shape-level reproduction of the paper's measured claims.

These assert *directions and orderings* (who wins, where crossovers
fall), per DESIGN.md §5 — absolute numbers are recorded in
EXPERIMENTS.md by the benches.
"""

import pytest

from repro.common import ConvProblem
from repro.gpusim import RTX2070, V100
from repro.kernels import Tunables, measure_main_loop
from repro.models import resnet_layer
from repro.perfmodel import cudnn_time, our_layer_performance

pytestmark = pytest.mark.slow

SURROGATE = ConvProblem(n=32, c=24, h=16, w=16, k=64)


@pytest.fixture(scope="module")
def main_loop():
    cache = {}

    def measure(**kwargs):
        key = tuple(sorted(kwargs.items()))
        if key not in cache:
            cache[key] = measure_main_loop(
                SURROGATE, device=RTX2070, tunables=Tunables(**kwargs)
            )
        return cache[key]

    return measure


def test_yield_natural_wins(main_loop):
    """§6.1: the Natural strategy beats NVCC's and cuDNN's heuristics.

    (The paper separates nvcc8 at 1.09× and cudnn7 at 1.11×; in the
    simulator the two heuristics land within noise of each other, so only
    natural-vs-heuristic is asserted.)
    """
    nat = main_loop(yield_strategy="natural")
    nvcc = main_loop(yield_strategy="nvcc8")
    cudnn = main_loop(yield_strategy="cudnn7")
    assert nat.cycles_per_iter < nvcc.cycles_per_iter
    assert nat.cycles_per_iter < cudnn.cycles_per_iter


def test_ldg_interleave_monotone(main_loop):
    """§6.2 / Fig. 8: wider LDG spacing is faster (LDG8 > LDG4 > LDG2)."""
    l2 = main_loop(ldg_interleave=2)
    l4 = main_loop(ldg_interleave=4)
    l8 = main_loop(ldg_interleave=8)
    assert l8.cycles_per_iter < l4.cycles_per_iter < l2.cycles_per_iter
    assert l2.cycles_per_iter / l8.cycles_per_iter > 1.05  # paper: up to 1.24


def test_main_loop_sol_high(main_loop):
    """Figs. 10-11: the main loop sustains a high fraction of FP32 peak."""
    assert main_loop().sol > 0.80  # paper: 87.5-93%


def test_transposed_smem_layout_required(main_loop):
    """§4.3: the naive tile-major buffer serializes on bank conflicts."""
    good = main_loop(smem_layout="transposed")
    bad = main_loop(smem_layout="tile_major")
    assert good.counters.smem_conflict_cycles == 0
    assert bad.counters.smem_conflict_cycles > 0
    assert bad.cycles_per_iter > 1.4 * good.cycles_per_iter


def test_no_register_bank_conflicts_in_main_loop(main_loop):
    """Fig. 4's allocation + .reuse: zero register-bank conflicts."""
    assert main_loop().counters.reg_bank_conflicts == 0


def test_bk64_outperforms_bk32(main_loop):
    """§3.3: the larger cache block sustains higher FFMA throughput."""
    b64 = main_loop(bk=64)
    b32 = main_loop(bk=32)
    assert b64.tflops > b32.tflops


# ---------------------------------------------------------------------------
# Whole-layer claims (Table 6 shape)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def speedups():
    out = {}
    for dev, name in ((V100, "V100"), (RTX2070, "RTX2070")):
        for layer in ("Conv2", "Conv5"):
            p = resnet_layer(layer, 64)
            ours = our_layer_performance(p, dev)
            out[(name, layer)] = cudnn_time(p, dev, "WINOGRAD") / ours.time_s
    return out


def test_ours_beats_cudnn_winograd_everywhere(speedups):
    assert all(s > 1.0 for s in speedups.values())


def test_conv5_speedup_largest(speedups):
    """§7.1: Conv5 speedups are 'significantly better than other layers'."""
    for dev in ("V100", "RTX2070"):
        assert speedups[(dev, "Conv5")] > speedups[(dev, "Conv2")]


def test_turing_speedups_exceed_volta(speedups):
    """§7.1: occupancy makes cuDNN relatively worse on RTX2070.

    On Conv5 the effect is dominated by cuDNN's poor baseline on both
    devices, so the strict ordering is asserted on Conv2 only.
    """
    assert speedups[("RTX2070", "Conv2")] > speedups[("V100", "Conv2")]
    assert speedups[("RTX2070", "Conv5")] > 0.9 * speedups[("V100", "Conv5")]
