"""Schedule / ScheduleSpace: validation, conversions, enumeration."""

import dataclasses

import pytest

from repro.common.errors import ConvConfigError
from repro.kernels import Tunables
from repro.sched import (
    CUDNN_SCHEDULE,
    DEFAULT_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SCHEDULE_FIELDS,
    Schedule,
    ScheduleSpace,
)


def test_paper_schedule_matches_tunables_defaults():
    # The default Tunables *is* the paper's schedule; the two must agree
    # or the planner and the tuner would disagree about the baseline.
    assert Schedule.from_tunables(Tunables()) == PAPER_SCHEDULE


def test_schedule_roundtrips_through_tunables():
    sched = Schedule(yield_strategy="nvcc8", ldg_interleave=4,
                     sts_interleave=2, double_buffer=1)
    assert Schedule.from_tunables(sched.to_tunables()) == sched


def test_to_tunables_preserves_structural_base():
    base = Tunables(bk=32)
    grafted = CUDNN_SCHEDULE.to_tunables(base)
    assert grafted.bk == 32
    assert grafted.yield_strategy == "cudnn7"
    assert grafted.ldg_interleave == 2
    # and the base itself is untouched (dataclasses.replace semantics)
    assert base.yield_strategy == "natural"


def test_schedule_validation():
    with pytest.raises(ConvConfigError):
        Schedule(yield_strategy="eager")
    with pytest.raises(ConvConfigError):
        Schedule(ldg_interleave=0)
    with pytest.raises(ConvConfigError):
        Schedule(sts_interleave=-2)
    with pytest.raises(ConvConfigError):
        Schedule(double_buffer=3)


def test_schedule_dict_roundtrip_and_unknown_fields():
    sched = Schedule(ldg_interleave=4)
    assert Schedule.from_dict(sched.to_dict()) == sched
    assert set(sched.to_dict()) == set(SCHEDULE_FIELDS)
    with pytest.raises(ConvConfigError):
        Schedule.from_dict({"ldg_interleave": 4, "bk": 64})


def test_schedule_label():
    assert PAPER_SCHEDULE.label() == "yield=natural/ldg8/sts6/db2"
    assert CUDNN_SCHEDULE.label() == "yield=cudnn7/ldg2/sts2/db2"


def test_space_enumeration_is_deterministic_and_complete():
    candidates = DEFAULT_SPACE.candidates()
    assert len(candidates) == len(DEFAULT_SPACE) == 54
    assert len(set(candidates)) == 54
    assert candidates == DEFAULT_SPACE.candidates()
    assert PAPER_SCHEDULE in DEFAULT_SPACE
    assert CUDNN_SCHEDULE in DEFAULT_SPACE


def test_quick_space_is_a_subset():
    quick = set(QUICK_SPACE.candidates())
    assert len(quick) == len(QUICK_SPACE) == 12
    assert quick <= set(DEFAULT_SPACE.candidates())
    assert PAPER_SCHEDULE in QUICK_SPACE


def test_space_signature_distinguishes_spaces():
    assert DEFAULT_SPACE.signature() != QUICK_SPACE.signature()
    assert QUICK_SPACE.signature() == ScheduleSpace(
        ldg_interleaves=(2, 8), sts_interleaves=(2, 6), double_buffers=(2,)
    ).signature()


def test_space_validation():
    with pytest.raises(ConvConfigError):
        ScheduleSpace(yield_strategies=())
    with pytest.raises(ConvConfigError):
        ScheduleSpace(ldg_interleaves=(2, 2))
    with pytest.raises(ConvConfigError):
        ScheduleSpace(double_buffers=(1, 2, 3))


def test_axis_variants_pin_other_axes():
    variants = DEFAULT_SPACE.axis_variants("ldg_interleave")
    assert set(variants) == {"ldg2", "ldg4", "ldg8"}
    for schedule in variants.values():
        assert schedule.yield_strategy == PAPER_SCHEDULE.yield_strategy
        assert schedule.sts_interleave == PAPER_SCHEDULE.sts_interleave
    assert variants["ldg8"] == PAPER_SCHEDULE

    around = DEFAULT_SPACE.axis_variants("yield_strategy", CUDNN_SCHEDULE)
    assert around["yield=cudnn7"] == CUDNN_SCHEDULE
    assert around["yield=natural"] == dataclasses.replace(
        CUDNN_SCHEDULE, yield_strategy="natural"
    )
    with pytest.raises(ConvConfigError):
        DEFAULT_SPACE.axis_variants("bk")
