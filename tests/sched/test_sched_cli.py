"""``python -m repro sched`` CLI and the plan-layer schedule wiring.

All tests patch the simulator with an instant synthetic cost model (the
paper schedule is the optimum) so the CLI plumbing, the plan cache and
the session integration run in milliseconds.
"""

import json
import types

import pytest

from repro.common import ConvConfigError, make_rng, random_activation, random_filter
from repro.gpusim import RTX2070
from repro.models import resnet_layer
from repro.runtime import ExecutionContext, InferenceSession
from repro.sched import PAPER_SCHEDULE, ScheduleSearchConfig, ScheduleSpace, SearchBudget
from repro.sched.cli import main as sched_main

SMALL_SPACE = ScheduleSpace(
    yield_strategies=("natural", "nvcc8"),
    ldg_interleaves=(2, 8),
    sts_interleaves=(6,),
    double_buffers=(2,),
)
SMALL_CONFIG = ScheduleSearchConfig(
    space=SMALL_SPACE, budget=SearchBudget(max_rungs=1)
)

YIELD_PENALTY = {"natural": 0, "nvcc8": 60, "cudnn7": 100}


@pytest.fixture
def fake_simulator(monkeypatch):
    calls = []

    def fake_measure(prob, device, tunables, iters=3, num_blocks=None, context=None, tile=None):
        calls.append((tunables, iters))
        cycles = (
            5000.0
            - 60 * tunables.ldg_interleave
            - 10 * tunables.sts_interleave
            + YIELD_PENALTY[tunables.yield_strategy]
            + (40 if tunables.double_buffer == 1 else 0)
        )
        return types.SimpleNamespace(
            cycles_per_iter=cycles, tflops=1e6 / cycles, sol=0.9
        )

    monkeypatch.setattr("repro.sched.search.measure_main_loop", fake_measure)
    monkeypatch.setattr(
        "repro.sched.search.lint_gate_candidate", lambda *a, **k: None
    )
    return calls


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_space_lists_candidates(capsys):
    assert sched_main(["space", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "12 candidates" in out
    assert PAPER_SCHEDULE.label() in out


def test_cli_search_no_layers(fake_simulator, capsys):
    rc = sched_main([
        "search", "--quick", "--device", "RTX2070", "--no-layers",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"winner: {PAPER_SCHEDULE.label()}" in out
    assert "ldg8_over_ldg2" in out


def test_cli_search_plans_layers_and_writes_json(fake_simulator, tmp_path, capsys):
    json_path = tmp_path / "search.json"
    trace_path = tmp_path / "trace.json"
    rc = sched_main([
        "search", "--quick", "--device", "RTX2070",
        "--layers", "Conv3", "--batch", "1", "--seed", "0",
        "--json", str(json_path), "--trace", str(trace_path),
    ])
    assert rc == 0
    payload = json.loads(json_path.read_text())
    assert payload["search"]["best"]["label"] == PAPER_SCHEDULE.label()
    assert payload["paper_ordering"]["ldg8_over_ldg2"] > 1.0
    [layer] = payload["layers"]
    assert layer["layer"].startswith("Conv3")
    # the heuristic ranks the F(4x4,3x3) variant first on Conv3
    assert layer["algo"] == "WINOGRAD_F44"
    assert layer["tile"] == "f44"
    assert layer["schedule_label"] == PAPER_SCHEDULE.label()
    # the trace records the search and the per-candidate measurements
    spans = json.loads(trace_path.read_text())
    kinds = {s["kind"] for s in spans}
    assert "sched_search" in kinds and "sched" in kinds
    out = capsys.readouterr().out
    assert "WINOGRAD" in out


def test_cli_search_rejects_empty_layers(fake_simulator):
    with pytest.raises(SystemExit):
        sched_main(["search", "--quick", "--layers", " , "])


# ---------------------------------------------------------------------------
# conv2d / plan-cache integration
# ---------------------------------------------------------------------------
def _layer_data(name="Conv3", n=1, seed=0):
    prob = resnet_layer(name, n)
    rng = make_rng(seed)
    return prob, random_activation(prob, rng), random_filter(prob, rng)


def test_conv2d_attaches_schedule_to_cached_plan(fake_simulator):
    from repro.convolution import conv2d

    calls = fake_simulator
    ctx = ExecutionContext(device=RTX2070, schedule_search=SMALL_CONFIG)
    prob, x, f = _layer_data()
    conv2d(x, f, pad=prob.pad, algo="AUTO_HEURISTIC", device=RTX2070,
           context=ctx, tune_schedule=True)
    [plan] = ctx.plans.snapshot().values()
    assert plan.algo == "WINOGRAD_F44"
    assert plan.schedule == PAPER_SCHEDULE
    # the second call hits the plan cache and the ScheduleBook memo:
    # no fresh simulator measurements.
    count = len(calls)
    conv2d(x, f, pad=prob.pad, algo="AUTO_HEURISTIC", device=RTX2070,
           context=ctx, tune_schedule=True)
    assert len(calls) == count
    assert len(ctx.schedules) == 1


def test_conv2d_tune_schedule_defaults_to_context_config(fake_simulator):
    from repro.convolution import conv2d

    ctx = ExecutionContext(device=RTX2070, schedule_search=SMALL_CONFIG)
    prob, x, f = _layer_data()
    # no tune_schedule kwarg: the context's schedule_search opts in
    conv2d(x, f, pad=prob.pad, algo="AUTO_HEURISTIC", device=RTX2070,
           context=ctx)
    [plan] = ctx.plans.snapshot().values()
    assert plan.schedule == PAPER_SCHEDULE


def test_conv2d_without_tuning_leaves_schedule_unset(fake_simulator):
    from repro.convolution import conv2d

    ctx = ExecutionContext(device=RTX2070)
    prob, x, f = _layer_data()
    conv2d(x, f, pad=prob.pad, algo="AUTO_HEURISTIC", device=RTX2070,
           context=ctx)
    [plan] = ctx.plans.snapshot().values()
    assert plan.schedule is None
    assert not fake_simulator  # the simulator was never invoked


def test_conv2d_rejects_tune_schedule_for_concrete_algo():
    from repro.convolution import conv2d

    prob, x, f = _layer_data()
    with pytest.raises(ConvConfigError):
        conv2d(x, f, pad=prob.pad, algo="WINOGRAD", tune_schedule=True)


# ---------------------------------------------------------------------------
# InferenceSession integration
# ---------------------------------------------------------------------------
def test_session_compile_records_schedule(fake_simulator):
    ctx = ExecutionContext(device=RTX2070, schedule_search=SMALL_CONFIG)
    session = InferenceSession(
        [resnet_layer("Conv2", 1), resnet_layer("Conv3", 1)],
        mode="AUTO_HEURISTIC", context=ctx,
    )
    assert session.tune_schedule  # defaults on: the context has a config
    plans = session.compile()
    for plan in plans:
        assert plan.algo == "WINOGRAD_F44"
        assert plan.tile == "f44"
        assert plan.schedule == PAPER_SCHEDULE
        assert plan.to_dict()["schedule"] == PAPER_SCHEDULE.to_dict()
    # one search serves every layer
    assert len(ctx.schedules) == 1
    spans = [s for s in ctx.export_trace() if s["kind"] == "plan"]
    assert len(spans) == 2
    assert all(
        s["attrs"]["schedule"] == PAPER_SCHEDULE.label() for s in spans
    )


def test_session_tune_schedule_off_by_default(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    session = InferenceSession(
        [resnet_layer("Conv3", 1)], mode="AUTO_HEURISTIC", context=ctx
    )
    assert not session.tune_schedule
    [plan] = session.compile()
    assert plan.schedule is None
    assert plan.to_dict()["schedule"] is None
    assert not fake_simulator
