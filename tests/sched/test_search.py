"""Successive-halving schedule search: pruning, memoization, tracing.

The fast tests drive the tuner with a synthetic cost model (patched in
place of ``measure_main_loop``) so the pruning logic, budgets and
bookkeeping are exercised without the simulator; one slow test runs the
real gpusim-in-the-loop path end to end.
"""

import dataclasses
import types

import pytest

from repro.common.errors import ConvConfigError
from repro.gpusim import RTX2070
from repro.runtime import ExecutionContext
from repro.sched import (
    PAPER_SCHEDULE,
    Schedule,
    ScheduleSearchConfig,
    ScheduleSpace,
    SearchBudget,
    ensure_schedule,
    paper_ordering,
    successive_halving,
)

SMALL_SPACE = ScheduleSpace(
    yield_strategies=("natural", "nvcc8"),
    ldg_interleaves=(2, 8),
    sts_interleaves=(6,),
    double_buffers=(2,),
)

YIELD_PENALTY = {"natural": 0, "nvcc8": 60, "cudnn7": 100}


def fake_cycles(tunables) -> float:
    """Synthetic, paper-shaped cost: the PAPER_SCHEDULE is the optimum."""
    return (
        5000.0
        - 60 * tunables.ldg_interleave
        - 10 * tunables.sts_interleave
        + YIELD_PENALTY[tunables.yield_strategy]
        + (40 if tunables.double_buffer == 1 else 0)
    )


@pytest.fixture
def fake_simulator(monkeypatch):
    """Replace the simulator and lint gate with an instant cost model."""
    calls = []

    def fake_measure(prob, device, tunables, iters=3, num_blocks=None, context=None, tile=None):
        calls.append((tunables, iters))
        cycles = fake_cycles(tunables)
        return types.SimpleNamespace(
            cycles_per_iter=cycles, tflops=1e6 / cycles, sol=0.9
        )

    monkeypatch.setattr("repro.sched.search.measure_main_loop", fake_measure)
    monkeypatch.setattr(
        "repro.sched.search.lint_gate_candidate",
        lambda *args, **kwargs: None,
    )
    return calls


def test_search_finds_paper_schedule(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070, budget=SearchBudget(max_rungs=2), context=ctx
    )
    assert result.best.schedule == PAPER_SCHEDULE
    # rung 0 measures all 4; rung 1 the kept ceil(4/3)=2.
    assert [len(r) for r in result.rungs] == [4, 2]
    assert result.evaluations == 6
    assert result.lint_gated == 4


def test_rung_budgets_escalate(fake_simulator):
    calls = fake_simulator
    budget = SearchBudget(base_iters=3, iters_step=4, eta=2, max_rungs=2)
    ctx = ExecutionContext(device=RTX2070)
    successive_halving(SMALL_SPACE, RTX2070, budget=budget, context=ctx)
    assert {it for _, it in calls} == {3, 7}
    assert budget.rung_iters(0) == 3 and budget.rung_iters(1) == 7


def test_search_stops_at_single_survivor(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070,
        budget=SearchBudget(eta=4, max_rungs=5), context=ctx,
    )
    # 4 -> ceil(4/4)=1 survivor: the search must stop early, not pad
    # rungs out to max_rungs.
    assert [len(r) for r in result.rungs] == [4, 1]
    assert result.best.schedule == PAPER_SCHEDULE


def test_explicit_candidate_list(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    pair = [PAPER_SCHEDULE, Schedule(ldg_interleave=2)]
    result = successive_halving(
        device=RTX2070, candidates=pair,
        budget=SearchBudget(max_rungs=1), context=ctx,
    )
    assert result.space_signature == "explicit:2"
    assert result.best.schedule == PAPER_SCHEDULE
    with pytest.raises(ConvConfigError):
        successive_halving(device=RTX2070, candidates=[], context=ctx)


def test_ranking_ties_break_deterministically(fake_simulator, monkeypatch):
    monkeypatch.setattr(
        "repro.sched.search.measure_main_loop",
        lambda prob, device, tunables, iters=3, num_blocks=None, context=None,
        tile=None:
            types.SimpleNamespace(cycles_per_iter=100.0, tflops=1.0, sol=0.5),
    )
    ctx = ExecutionContext(device=RTX2070)
    a = successive_halving(SMALL_SPACE, RTX2070,
                           budget=SearchBudget(max_rungs=1), context=ctx)
    b = successive_halving(SMALL_SPACE, RTX2070,
                           budget=SearchBudget(max_rungs=1), context=ctx)
    labels = [s.schedule.label() for s in a.ranking()]
    assert labels == sorted(labels)
    assert labels == [s.schedule.label() for s in b.ranking()]


def test_search_records_trace_spans(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    successive_halving(SMALL_SPACE, RTX2070,
                       budget=SearchBudget(max_rungs=1), context=ctx)
    spans = ctx.export_trace()
    sched_spans = [s for s in spans if s["kind"] == "sched"]
    search_spans = [s for s in spans if s["kind"] == "sched_search"]
    assert len(sched_spans) == 4
    assert all("cycles_per_iter" in s["attrs"] for s in sched_spans)
    assert len(search_spans) == 1
    assert search_spans[0]["attrs"]["best"] == PAPER_SCHEDULE.label()
    assert search_spans[0]["attrs"]["evaluations"] == 4


def test_paper_ordering_uses_rung0(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070, budget=SearchBudget(max_rungs=2), context=ctx
    )
    ordering = paper_ordering(result)
    anchor = fake_cycles(PAPER_SCHEDULE.to_tunables())
    assert ordering["anchor"] == PAPER_SCHEDULE.label()
    assert ordering["ldg8_over_ldg2"] == pytest.approx(
        fake_cycles(Schedule(ldg_interleave=2).to_tunables()) / anchor
    )
    assert ordering["natural_over_nvcc8"] > 1.0
    # axes the space does not cover are simply absent
    assert "db2_over_db1" not in ordering
    assert "sts6_over_sts2" not in ordering


def test_schedule_book_memoizes(fake_simulator):
    calls = fake_simulator
    ctx = ExecutionContext(device=RTX2070)
    config = ScheduleSearchConfig(space=SMALL_SPACE,
                                  budget=SearchBudget(max_rungs=1))
    first = ensure_schedule(device=RTX2070, config=config, context=ctx)
    count = len(calls)
    second = ensure_schedule(device=RTX2070, config=config, context=ctx)
    assert second is first
    assert len(calls) == count  # no re-measurement
    assert len(ctx.schedules) == 1
    # a different budget is a different memo entry
    other = ScheduleSearchConfig(space=SMALL_SPACE,
                                 budget=SearchBudget(max_rungs=2))
    ensure_schedule(device=RTX2070, config=other, context=ctx)
    assert len(ctx.schedules) == 2
    ctx.reset()
    assert len(ctx.schedules) == 0


def test_ensure_schedule_defaults_to_context_config(fake_simulator):
    config = ScheduleSearchConfig(space=SMALL_SPACE,
                                  budget=SearchBudget(max_rungs=1))
    ctx = ExecutionContext(device=RTX2070, schedule_search=config)
    result = ensure_schedule(context=ctx)
    assert result.space_signature == SMALL_SPACE.signature()
    assert ctx.schedules.lookup(RTX2070.name, config) is result


def test_budget_validation():
    with pytest.raises(ConvConfigError):
        SearchBudget(base_iters=2)
    with pytest.raises(ConvConfigError):
        SearchBudget(iters_step=0)
    with pytest.raises(ConvConfigError):
        SearchBudget(eta=1)
    with pytest.raises(ConvConfigError):
        SearchBudget(max_rungs=0)
    with pytest.raises(ConvConfigError):
        SearchBudget(num_blocks=0)


def test_result_serializes(fake_simulator):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(SMALL_SPACE, RTX2070,
                                budget=SearchBudget(max_rungs=1), context=ctx)
    payload = result.to_dict()
    assert payload["best"]["label"] == PAPER_SCHEDULE.label()
    assert payload["evaluations"] == 4
    assert len(payload["rungs"][0]) == 4
    assert payload["budget"]["eta"] == 3
    # every score row reconstructs its Schedule
    rebuilt = Schedule.from_dict(payload["best"]["schedule"])
    assert rebuilt == PAPER_SCHEDULE


@pytest.mark.slow
def test_search_with_real_simulator():
    """gpusim-in-the-loop on a 2-point space: LDG8 must beat LDG2."""
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        device=RTX2070,
        candidates=[PAPER_SCHEDULE, dataclasses.replace(PAPER_SCHEDULE,
                                                        ldg_interleave=2)],
        budget=SearchBudget(max_rungs=1),
        context=ctx,
    )
    assert result.best.schedule == PAPER_SCHEDULE
    scores = {s.schedule.ldg_interleave: s.cycles_per_iter
              for s in result.rungs[0]}
    assert scores[2] / scores[8] > 1.05  # Fig. 8's direction
    # the winning candidates were built and lint-gated through the caches
    assert ctx.kernel_cache.stats().builds > 0
    assert result.lint_gated == 2
