"""Static pre-simulation pruning of the schedule-search space.

Fast tests patch ``static_cost_candidate`` with a synthetic cost table
so the split logic and bookkeeping run without building kernels; one
slow test prunes a real (small) space through the assembler and checks
the known-best schedule survives.
"""

import types

import pytest

from repro.common.errors import ConvConfigError
from repro.gpusim import RTX2070
from repro.runtime import ExecutionContext
from repro.sched import (
    PAPER_SCHEDULE,
    QUICK_SPACE,
    Schedule,
    ScheduleSpace,
    SearchBudget,
    prune_candidates,
    static_cost_candidate,
    successive_halving,
)

SMALL_SPACE = ScheduleSpace(
    yield_strategies=("natural", "nvcc8"),
    ldg_interleaves=(2, 8),
    sts_interleaves=(6,),
    double_buffers=(2,),
)

YIELD_PENALTY = {"natural": 0, "nvcc8": 60, "cudnn7": 100}


def fake_cycles(tunables) -> float:
    return (
        5000.0
        - 60 * tunables.ldg_interleave
        - 10 * tunables.sts_interleave
        + YIELD_PENALTY[tunables.yield_strategy]
        + (40 if tunables.double_buffer == 1 else 0)
    )


@pytest.fixture
def fake_search(monkeypatch):
    """Instant simulator + lint gate, as in test_search.py."""
    calls = []

    def fake_measure(prob, device, tunables, iters=3, num_blocks=None,
                     context=None, tile=None):
        calls.append(tunables)
        cycles = fake_cycles(tunables)
        return types.SimpleNamespace(
            cycles_per_iter=cycles, tflops=1e6 / cycles, sol=0.9
        )

    monkeypatch.setattr("repro.sched.search.measure_main_loop", fake_measure)
    monkeypatch.setattr(
        "repro.sched.search.lint_gate_candidate",
        lambda *args, **kwargs: None,
    )
    return calls


@pytest.fixture
def fake_static_cost(monkeypatch):
    """Static costs shaped like the real ones: yield ablations cost more."""

    def cost(schedule, device, *, iters=3, base_tunables=None, prob=None,
             context=None, tile=None):
        tunables = schedule.to_tunables(base_tunables)
        cycles = 1000 + YIELD_PENALTY[tunables.yield_strategy]
        return types.SimpleNamespace(static_issue_cycles=cycles)

    monkeypatch.setattr("repro.sched.search.static_cost_candidate", cost)
    return cost


def test_prune_margin_validation():
    with pytest.raises(ConvConfigError):
        SearchBudget(prune_margin=0.99)
    # 1.0 (prune everything above the floor) and None (off) are legal.
    assert SearchBudget(prune_margin=1.0).prune_margin == 1.0
    assert SearchBudget().prune_margin is None


def test_prune_candidates_splits_on_margin(fake_static_cost):
    candidates = list(SMALL_SPACE.candidates())
    kept, pruned = prune_candidates(candidates, RTX2070, 1.05)
    # natural costs 1000, nvcc8 costs 1060 = 1.06x floor: pruned.
    assert {s.yield_strategy for s in kept} == {"natural"}
    assert len(kept) + len(pruned) == len(candidates)
    assert all("nvcc8" in label for label in pruned)
    assert pruned == sorted(pruned)


def test_prune_candidates_keeps_everything_at_loose_margin(fake_static_cost):
    candidates = list(SMALL_SPACE.candidates())
    kept, pruned = prune_candidates(candidates, RTX2070, 2.0)
    assert kept == candidates and pruned == []


def test_cheapest_candidate_always_survives(fake_static_cost):
    # Even margin 1.0 must keep the floor candidate(s).
    kept, _ = prune_candidates(list(SMALL_SPACE.candidates()), RTX2070, 1.0)
    assert kept and all(s.yield_strategy == "natural" for s in kept)


def test_search_prunes_before_rung0(fake_search, fake_static_cost):
    calls = fake_search
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070,
        budget=SearchBudget(max_rungs=2, prune_margin=1.05), context=ctx,
    )
    # Both nvcc8 candidates pruned statically: rung 0 only measures the
    # two natural ones, and the pruned labels are recorded.
    assert result.best.schedule == PAPER_SCHEDULE
    assert [len(r) for r in result.rungs] == [2, 1]
    assert len(result.pruned) == 2
    assert all("nvcc8" in label for label in result.pruned)
    assert all(t.yield_strategy == "natural" for t in calls)
    # The search span records the prune count.
    (span,) = [s for s in ctx.export_trace() if s["kind"] == "sched_search"]
    assert span["attrs"]["pruned"] == 2


def test_search_without_margin_prunes_nothing(fake_search, fake_static_cost):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070, budget=SearchBudget(max_rungs=1), context=ctx
    )
    assert result.pruned == []
    assert len(result.rungs[0]) == 4


def test_pruned_labels_serialize(fake_search, fake_static_cost):
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        SMALL_SPACE, RTX2070,
        budget=SearchBudget(max_rungs=1, prune_margin=1.05), context=ctx,
    )
    payload = result.to_dict()
    assert payload["pruned"] == result.pruned
    assert payload["budget"]["prune_margin"] == 1.05


def test_explicit_single_candidate_skips_pruning(fake_search,
                                                 fake_static_cost):
    # One candidate: nothing to rank against, the pruner must not run.
    ctx = ExecutionContext(device=RTX2070)
    result = successive_halving(
        device=RTX2070, candidates=[Schedule(yield_strategy="nvcc8")],
        budget=SearchBudget(max_rungs=1, prune_margin=1.0), context=ctx,
    )
    assert result.pruned == []
    assert len(result.rungs[0]) == 1


@pytest.mark.slow
def test_real_static_costs_never_prune_known_best():
    """Through the real assembler: PAPER_SCHEDULE sits at the floor."""
    ctx = ExecutionContext(device=RTX2070)
    candidates = list(QUICK_SPACE.candidates())
    assert PAPER_SCHEDULE in candidates
    kept, pruned = prune_candidates(
        candidates, RTX2070, 1.05, iters=3, context=ctx
    )
    assert PAPER_SCHEDULE in kept
    assert PAPER_SCHEDULE.label() not in pruned
    # The margin separates the yield-strategy classes (Fig. 9): every
    # non-natural candidate in the space is statically prunable.
    assert all(s.yield_strategy == "natural" for s in kept)
    report = static_cost_candidate(PAPER_SCHEDULE, RTX2070, context=ctx)
    floor = min(
        static_cost_candidate(s, RTX2070, context=ctx).static_issue_cycles
        for s in candidates
    )
    assert report.static_issue_cycles == floor


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
