"""Cross-device schedule validation: penalty semantics and round-trips.

Driven by a synthetic, *device-sensitive* cost model patched in place of
``measure_main_loop`` — the two devices genuinely prefer different
ldg interleaves, so cross-validation must surface a positive penalty
while home-device validation reports zero.
"""

import types

import pytest

from repro.common.errors import ConvConfigError
from repro.gpusim import RTX2070, V100
from repro.runtime import ExecutionContext
from repro.sched import (
    CrossDeviceReport,
    Schedule,
    ScheduleSearchConfig,
    ScheduleSpace,
    cross_validate,
    ensure_schedule,
    validate_plan_on,
)

SMALL_SPACE = ScheduleSpace(
    yield_strategies=("natural",),
    ldg_interleaves=(2, 8),
    sts_interleaves=(6,),
    double_buffers=(2,),
)

CONFIG = ScheduleSearchConfig(space=SMALL_SPACE)


def divergent_cycles(tunables, device) -> float:
    """V100 wants ldg8; RTX2070's shallower LSU queue wants ldg2."""
    if device.arch == "volta":
        return 5000.0 - 50 * tunables.ldg_interleave
    return 5000.0 + 50 * tunables.ldg_interleave


@pytest.fixture
def fake_simulator(monkeypatch):
    def fake_measure(prob, device, tunables, iters=3, num_blocks=None,
                     context=None, tile=None):
        cycles = divergent_cycles(tunables, device)
        return types.SimpleNamespace(
            cycles_per_iter=cycles, tflops=1e6 / cycles, sol=0.9
        )

    monkeypatch.setattr("repro.sched.search.measure_main_loop", fake_measure)
    monkeypatch.setattr(
        "repro.sched.search.lint_gate_candidate", lambda *a, **k: None
    )
    monkeypatch.setattr(
        "repro.sched.search.prefetch_main_loop_sims", lambda *a, **k: 0
    )


def _search(device):
    ctx = ExecutionContext(device=device)
    result = ensure_schedule(device=device, config=CONFIG, context=ctx)
    return ctx, result


def test_home_device_validation_has_zero_penalty(fake_simulator):
    ctx, result = _search(V100)
    report = validate_plan_on(result, V100, config=CONFIG, context=ctx)
    assert isinstance(report, CrossDeviceReport)
    assert report.tuned_on == "V100" and report.validated_on == "V100"
    assert report.penalty_pct == pytest.approx(0.0)
    assert report.foreign_cycles == report.foreign_best_cycles


def test_cross_device_penalty_is_positive_when_orderings_diverge(fake_simulator):
    ctx_v, result_v = _search(V100)
    ctx_r = ExecutionContext(device=RTX2070)
    report = validate_plan_on(result_v, "RTX2070", config=CONFIG, context=ctx_r)
    # V100's winner (ldg8: 4600) costs 5400 on RTX2070, whose own floor
    # is ldg2 at 5100 → +300/5100.
    assert result_v.best.schedule.ldg_interleave == 8
    assert report.validated_on == "RTX2070"
    assert report.foreign_cycles == pytest.approx(5400.0)
    assert report.foreign_best_cycles == pytest.approx(5100.0)
    assert report.penalty_pct == pytest.approx(300 / 5100 * 100)
    # ...and symmetrically, the RTX winner pays on V100.
    back = validate_plan_on(
        ensure_schedule(device=RTX2070, config=CONFIG, context=ctx_r),
        V100, config=CONFIG, context=ctx_v,
    )
    assert back.penalty_pct > 0


def test_validate_on_method_and_report_serialization(fake_simulator):
    ctx_v, result_v = _search(V100)
    ctx_r = ExecutionContext(device=RTX2070)
    report = result_v.validate_on("turing", config=CONFIG, context=ctx_r)
    payload = report.to_dict()
    assert payload["tuned_on"] == "V100"
    assert payload["validated_on"] == "RTX2070"
    assert payload["tile"] == "f22"
    assert payload["schedule"] == result_v.best.schedule.label()
    assert payload["penalty_pct"] == pytest.approx(report.penalty_pct)
    assert payload["iters"] == result_v.budget.base_iters


def test_validate_bare_schedule_needs_tuned_on(fake_simulator):
    ctx_r = ExecutionContext(device=RTX2070)
    schedule = Schedule(yield_strategy="natural", ldg_interleave=8,
                        sts_interleave=6, double_buffer=2)
    report = validate_plan_on(
        schedule, RTX2070, tuned_on="V100", config=CONFIG, context=ctx_r,
    )
    assert report.tuned_on == "V100"
    assert report.penalty_pct > 0


def test_validate_rejects_planless_objects(fake_simulator):
    ctx = ExecutionContext(device=V100)
    with pytest.raises(ConvConfigError, match="validate_plan_on"):
        validate_plan_on(object(), V100, config=CONFIG, context=ctx)


def test_off_grid_schedule_cheaper_than_floor_clamps_penalty(fake_simulator):
    """A validated schedule outside the searched grid can beat the grid
    floor; the penalty is then 0, never negative."""
    narrow = ScheduleSearchConfig(space=ScheduleSpace(
        yield_strategies=("natural",),
        ldg_interleaves=(2, 4),  # grid floor on V100 is ldg4 = 4800
        sts_interleaves=(6,),
        double_buffers=(2,),
    ))
    ctx = ExecutionContext(device=V100)
    off_grid = Schedule(yield_strategy="natural", ldg_interleave=8,
                        sts_interleave=6, double_buffer=2)  # 4600 on V100
    report = validate_plan_on(
        off_grid, V100, tuned_on=V100, config=narrow, context=ctx,
    )
    assert report.foreign_best_cycles == pytest.approx(4600.0)
    assert report.penalty_pct == pytest.approx(0.0)


def test_cross_validate_covers_every_ordered_pair(fake_simulator):
    ctx_v, result_v = _search(V100)
    ctx_r, result_r = _search(RTX2070)
    reports = cross_validate(
        {"V100": result_v, "RTX2070": result_r},
        config=CONFIG,
        contexts={"V100": ctx_v, "RTX2070": ctx_r},
    )
    pairs = {(r.tuned_on, r.validated_on) for r in reports}
    assert pairs == {("V100", "RTX2070"), ("RTX2070", "V100")}
    assert all(r.penalty_pct > 0 for r in reports)


@pytest.mark.slow
def test_real_simulator_cross_validation_round_trip():
    """gpusim in the loop: the RTX2070 f44 winner pays a real penalty on
    V100 (measured against V100's own rung-0 floor), and validating any
    winner on its home device never reports a negative penalty."""
    from repro.sched import QUICK_SPACE

    config = ScheduleSearchConfig(space=QUICK_SPACE)
    ctx_r = ExecutionContext(device=RTX2070)
    ctx_v = ExecutionContext(device=V100)
    result_r = ensure_schedule(device=RTX2070, config=config, context=ctx_r,
                               tile="f44")
    report = validate_plan_on(result_r, V100, config=config, context=ctx_v)
    assert report.tile == "f44"
    assert report.penalty_pct >= 0.0
    home = validate_plan_on(result_r, RTX2070, config=config, context=ctx_r)
    assert home.penalty_pct >= 0.0
