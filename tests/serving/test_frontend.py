"""ServingFrontend: batching, deadlines, backpressure, tenant isolation."""

import asyncio

import numpy as np
import pytest

from repro.common import ConvProblem, conv_tolerance, make_rng, random_filter
from repro.common.errors import BackpressureError, ServingError
from repro.convolution import conv2d
from repro.serving import ModelSpec, ServingConfig, ServingFrontend

PROB = ConvProblem(n=1, c=4, h=8, w=8, k=4, name="Tiny")
RNG = make_rng(7)
WEIGHTS = random_filter(PROB, RNG)


def _model(name="tiny", mode=None, problems=(PROB,), filters=(WEIGHTS,)):
    return ModelSpec(name=name, problems=tuple(problems),
                     filters=tuple(filters), mode=mode)


def _image(seed=0):
    rng = make_rng(seed)
    return (rng.random((PROB.c, PROB.h, PROB.w), dtype=np.float32) * 2 - 1)


def test_batches_form_up_to_max_batch():
    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=8, max_queue_delay_s=0.010, mode="GEMM"))
        frontend.register_model("a", _model())
        images = [_image(i) for i in range(16)]
        outs = await asyncio.gather(
            *[frontend.submit("a", "tiny", img) for img in images])
        for img, out in zip(images, outs):
            expect = conv2d(img[np.newaxis], WEIGHTS, pad=1, algo="GEMM")[0]
            np.testing.assert_allclose(out[0], expect,
                                       atol=conv_tolerance(PROB))
        snap = frontend.metrics.snapshot()
        await frontend.close()
        return snap

    snap = asyncio.run(main())
    assert snap.requests_completed == 16
    assert snap.batches < 16  # coalescing actually happened
    assert snap.mean_batch_size > 1.0
    assert snap.max_batch_size <= 8
    assert snap.deadline_overshoots == 0


def test_deadline_flushes_partial_batch():
    # One lonely request must not wait for max_batch companions: the
    # queue-delay deadline flushes a batch of one.
    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=64, max_queue_delay_s=0.002, mode="DIRECT"))
        frontend.register_model("a", _model())
        out = await asyncio.wait_for(
            frontend.submit("a", "tiny", _image()), timeout=5.0)
        snap = frontend.metrics.snapshot()
        await frontend.close()
        return out, snap

    out, snap = asyncio.run(main())
    assert out[0].shape == (PROB.k, PROB.out_h, PROB.out_w)
    assert snap.batches == 1 and snap.batched_requests == 1


def test_queue_depth_bound_sheds_load():
    async def main():
        # A long deadline and an oversized batch keep requests queued
        # so the depth bound is what admission control sees.
        frontend = ServingFrontend(ServingConfig(
            max_batch=64, max_queue_delay_s=30.0, max_queue_depth=3,
            mode="DIRECT"))
        frontend.register_model("a", _model())
        queued = [asyncio.ensure_future(
            frontend.submit("a", "tiny", _image(i))) for i in range(3)]
        await asyncio.sleep(0.01)  # let the queue absorb them
        with pytest.raises(BackpressureError) as excinfo:
            await frontend.submit("a", "tiny", _image(99))
        assert excinfo.value.reason == "queue_full"
        snap = frontend.metrics.snapshot()
        assert snap.rejected_by_reason == {"queue_full": 1}
        assert snap.queue_depth == 3
        await frontend.close()  # queued stragglers fail with ServingError
        for fut in queued:
            with pytest.raises(ServingError):
                await fut
        return snap

    asyncio.run(main())


def test_workspace_budget_caps_formed_batch_size():
    # GEMM's im2col workspace is linear in N; a budget sized for two
    # images caps the formed batch at 2 regardless of max_batch.
    from repro.perfmodel.workspace import gemm_workspace_bytes
    from repro.runtime.arena import _align

    per_image = _align(gemm_workspace_bytes(PROB))

    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=16, max_queue_delay_s=0.005, mode="GEMM",
            workspace_limit_bytes=2 * per_image))
        frontend.register_model("a", _model())
        assert frontend.stats()["tenants"]["a"]["batch_caps"]["tiny"] == 2
        outs = await asyncio.gather(
            *[frontend.submit("a", "tiny", _image(i)) for i in range(6)])
        snap = frontend.metrics.snapshot()
        arena = frontend.stats()["tenants"]["a"]["arena"]
        await frontend.close()
        return outs, snap, arena

    outs, snap, arena = asyncio.run(main())
    assert len(outs) == 6
    assert snap.max_batch_size == 2
    assert arena["peak_bytes"] <= 2 * per_image


def test_unservable_model_rejected_at_registration():
    frontend = ServingFrontend(ServingConfig(
        mode="GEMM", workspace_limit_bytes=64))  # < one image's im2col
    with pytest.raises(ServingError, match="batch 1"):
        frontend.register_model("a", _model())


def test_workspace_limit_surfaces_as_typed_backpressure():
    # Occupy the tenant's arena so the dispatch-time reservation loses:
    # the client must see BackpressureError, never WorkspaceLimitError.
    from repro.perfmodel.workspace import gemm_workspace_bytes
    from repro.runtime.arena import _align

    per_image = _align(gemm_workspace_bytes(PROB))

    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=1, max_queue_delay_s=0.001, mode="GEMM",
            workspace_limit_bytes=per_image))
        frontend.register_model("a", _model())
        hog = frontend.tenant_context("a").arena.reserve(per_image, tag="hog")
        try:
            with pytest.raises(BackpressureError) as excinfo:
                await frontend.submit("a", "tiny", _image())
            assert excinfo.value.reason == "workspace_limit"
        finally:
            hog.release()
        # With the budget free again the same request is served.
        out = await frontend.submit("a", "tiny", _image())
        snap = frontend.metrics.snapshot()
        await frontend.close()
        return out, snap

    out, snap = asyncio.run(main())
    assert out[0].shape == (PROB.k, PROB.out_h, PROB.out_w)
    assert snap.rejected_by_reason.get("workspace_limit") == 1
    assert snap.requests_completed == 1


def test_tenants_are_isolated():
    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=4, max_queue_delay_s=0.002, mode="GEMM"))
        frontend.register_model("alice", _model())
        frontend.register_model("bob", _model())  # same model name, own state
        await asyncio.gather(
            frontend.submit("alice", "tiny", _image(1)),
            frontend.submit("bob", "tiny", _image(2)),
        )
        ctx_a = frontend.tenant_context("alice")
        ctx_b = frontend.tenant_context("bob")
        stats = frontend.stats()
        await frontend.close()
        return ctx_a, ctx_b, stats

    ctx_a, ctx_b, stats = asyncio.run(main())
    assert ctx_a is not ctx_b
    assert ctx_a.arena is not ctx_b.arena
    assert ctx_a.schedules is not ctx_b.schedules
    # Each tenant's runtime counters are reported separately.
    assert set(stats["tenants"]) == {"alice", "bob"}
    for tenant in ("alice", "bob"):
        assert stats["tenants"][tenant]["arena"]["reserves"] >= 1


def test_multi_layer_stack_round_trip():
    prob2 = ConvProblem(n=1, c=4, h=8, w=8, k=8, name="Tiny2")
    w2 = random_filter(prob2, make_rng(8))

    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=4, max_queue_delay_s=0.002, mode="DIRECT"))
        frontend.register_model("a", _model(
            name="stack", problems=(PROB, prob2), filters=(WEIGHTS, w2)))
        outs = await frontend.submit("a", "stack", [_image(3), _image(4)])
        await frontend.close()
        return outs

    outs = asyncio.run(main())
    assert len(outs) == 2
    assert outs[0].shape == (PROB.k, PROB.out_h, PROB.out_w)
    assert outs[1].shape == (prob2.k, prob2.out_h, prob2.out_w)
    expect = conv2d(_image(3)[np.newaxis], WEIGHTS, pad=1, algo="DIRECT")[0]
    np.testing.assert_array_equal(outs[0], expect)


def test_submission_validation():
    async def main():
        frontend = ServingFrontend(ServingConfig(mode="DIRECT"))
        frontend.register_model("a", _model())
        with pytest.raises(ServingError, match="unknown tenant"):
            await frontend.submit("nobody", "tiny", _image())
        with pytest.raises(ServingError, match="no model"):
            await frontend.submit("a", "missing", _image())
        with pytest.raises(ServingError, match="input shape"):
            await frontend.submit("a", "tiny", _image()[:, :4])
        with pytest.raises(ServingError, match="already has a model"):
            frontend.register_model("a", _model())
        await frontend.close()
        with pytest.raises(ServingError, match="closed"):
            await frontend.submit("a", "tiny", _image())

    asyncio.run(main())


def test_model_spec_validation():
    with pytest.raises(ServingError, match="n=1"):
        ModelSpec(name="bad", problems=(PROB.with_batch(2),),
                  filters=(WEIGHTS,))
    with pytest.raises(ServingError, match="filter shape"):
        ModelSpec(name="bad", problems=(PROB,),
                  filters=(WEIGHTS[:, :2],))
    with pytest.raises(ServingError, match="at least one layer"):
        ModelSpec(name="bad", problems=(), filters=())
    sig = _model().signature()
    assert sig == ((PROB.c, PROB.h, PROB.w, PROB.k, PROB.r, PROB.s, PROB.pad),)


def test_config_validation():
    with pytest.raises(ServingError):
        ServingConfig(max_batch=0)
    with pytest.raises(ServingError):
        ServingConfig(max_queue_delay_s=-1.0)
    with pytest.raises(ServingError):
        ServingConfig(max_queue_depth=0)
    with pytest.raises(ServingError):
        ServingConfig(dispatch_workers=0)
    with pytest.raises(ServingError):
        ServingConfig(workspace_limit_bytes=-1)


def test_stats_export_is_json_ready():
    import json

    async def main():
        frontend = ServingFrontend(ServingConfig(
            max_batch=4, max_queue_delay_s=0.002, mode="GEMM"))
        frontend.register_model("a", _model())
        await frontend.submit("a", "tiny", _image())
        stats = frontend.stats()
        await frontend.close()
        return stats

    stats = asyncio.run(main())
    payload = json.loads(json.dumps(stats))
    assert payload["serving"]["requests_completed"] == 1
    assert payload["serving"]["batches"] == 1
    assert payload["tenants"]["a"]["sessions_compiled"] == 1
    assert payload["config"]["max_batch"] == 4
