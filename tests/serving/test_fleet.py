"""FleetRouter: load-aware placement, delegation, stats export.

Routing tests inject a cost function so no schedule search runs; one
submit round-trip drives the full stack (router → frontend → session)
on a tiny problem.
"""

import asyncio

import numpy as np
import pytest

from repro.common.errors import ServingError
from repro.common.problem import ConvProblem
from repro.gpusim import RTX2070, V100
from repro.serving import FleetRouter, ModelSpec, ServingConfig

TINY = ConvProblem(n=1, c=8, h=8, w=8, k=8, name="tiny")


def _model(name: str, prob: ConvProblem = TINY) -> ModelSpec:
    filt = np.ones((prob.k, prob.c, prob.r, prob.s), dtype=np.float32)
    return ModelSpec(name=name, problems=(prob,), filters=(filt,))


def _router(costs, **kwargs):
    return FleetRouter(
        ("V100", "RTX2070"),
        ServingConfig(max_batch=4, mode="GEMM"),
        cost_fn=lambda model, key, spec: costs[key],
        **kwargs,
    )


def test_router_resolves_devices_through_registry():
    router = _router({"V100": 1.0, "RTX2070": 1.0})
    assert router.device_keys == ["V100", "RTX2070"]
    assert router.planning_context("volta").device is V100
    assert router.planning_context("turing").device is RTX2070
    solo = FleetRouter(("V100",), cost_fn=lambda *a: 1.0)
    with pytest.raises(ServingError, match="not part of this fleet"):
        solo.frontend("RTX2070")


def test_router_rejects_empty_and_duplicate_fleets():
    with pytest.raises(ServingError, match="at least one device"):
        FleetRouter((), cost_fn=lambda *a: 1.0)
    with pytest.raises(ServingError, match="duplicate"):
        FleetRouter(("V100", "volta"), cost_fn=lambda *a: 1.0)


def test_greedy_load_aware_placement_uses_both_devices():
    """A pure argmin-speed policy would park everything on the faster
    device; argmin(load + cost) spills onto the slower one."""
    router = _router({"V100": 1.0, "RTX2070": 2.0})
    devices = [
        router.register_model("t", _model(f"m{i}")).device for i in range(4)
    ]
    # m0 -> V100 (0+1 < 0+2); m1 -> V100 (1+1 < 0+2... tie at 2, V100
    # wins the deterministic key tie-break is not needed: 2 == 2, V100
    # sorts first); m2 -> RTX (3 > 2); m3 -> V100.
    assert set(devices) == {"V100", "RTX2070"}
    assert devices.count("V100") == 3


def test_placement_records_costs_loads_and_traces():
    router = _router({"V100": 1.0, "RTX2070": 2.0})
    decision = router.register_model("t", _model("m0"))
    assert decision.device == "V100"
    assert decision.costs == {"V100": 1.0, "RTX2070": 2.0}
    assert decision.loads == {"V100": 0.0, "RTX2070": 0.0}
    spans = [
        s for s in router.planning_context("V100").tracer.spans()
        if s.kind == "route"
    ]
    assert len(spans) == 1
    assert spans[0].label == "t/m0"


def test_duplicate_registration_rejected():
    router = _router({"V100": 1.0, "RTX2070": 2.0})
    router.register_model("t", _model("m0"))
    with pytest.raises(ServingError, match="already has a model"):
        router.register_model("t", _model("m0"))


def test_submit_routes_to_placed_device_and_runs():
    async def go():
        router = _router({"V100": 5.0, "RTX2070": 1.0})
        async with router:
            decision = router.register_model("t", _model("m0"))
            assert decision.device == "RTX2070"
            image = np.ones((TINY.c, TINY.h, TINY.w), dtype=np.float32)
            outs = await router.submit("t", "m0", image)
            assert len(outs) == 1
            assert outs[0].shape == (TINY.k, TINY.out_h, TINY.out_w)
            # the request ran on the placed device's frontend
            stats = router.stats()
            served = stats["devices"]["RTX2070"]["serving"]["serving"]
            assert served["requests_completed"] == 1
            idle = stats["devices"]["V100"]["serving"]["serving"]
            assert idle["requests_completed"] == 0

    asyncio.run(go())


def test_submit_unplaced_model_is_actionable():
    async def go():
        router = _router({"V100": 1.0, "RTX2070": 1.0})
        async with router:
            with pytest.raises(ServingError, match="no placement"):
                await router.submit("t", "ghost", np.zeros(1))

    asyncio.run(go())


def test_stats_exports_routing_decisions_and_per_device_load():
    router = _router({"V100": 1.0, "RTX2070": 2.0})
    for i in range(3):
        router.register_model("t", _model(f"m{i}"))
    stats = router.stats()
    assert len(stats["routing"]) == 3
    assert all(
        set(d) >= {"tenant", "model", "device", "costs", "loads", "notes"}
        for d in stats["routing"]
    )
    total_models = sum(d["models"] for d in stats["devices"].values())
    assert total_models == 3
    assert stats["devices"]["V100"]["load_s"] == pytest.approx(2.0)
    assert stats["devices"]["RTX2070"]["load_s"] == pytest.approx(2.0)


def test_real_cost_model_is_occupancy_and_device_aware(monkeypatch):
    """With the measured-cycles path patched to a flat per-device value,
    the wave-model cost still differs across devices through their SM
    counts and occupancies — V100 (80 SMs) must underbid RTX2070
    (36 SMs) for a fused-eligible layer."""
    import types

    from repro.models.resnet import resnet_layer

    def fake_ensure(device=None, config=None, context=None, tile=None):
        from repro.sched.space import PAPER_SCHEDULE
        return types.SimpleNamespace(
            best=types.SimpleNamespace(
                schedule=PAPER_SCHEDULE, cycles_per_iter=1000.0
            ),
            budget=types.SimpleNamespace(base_iters=3),
            tile="f22",
        )

    monkeypatch.setattr("repro.sched.search.ensure_schedule", fake_ensure)
    router = FleetRouter(("V100", "RTX2070"), ServingConfig(max_batch=32))
    decision = router.place("t", _model("conv3", resnet_layer("Conv3", n=1)))
    assert decision.costs["V100"] < decision.costs["RTX2070"]
