"""ServingMetrics: counters, percentiles, queue-depth gauges."""

import threading

from repro.serving import ServingMetrics, percentile


def test_percentile_nearest_rank():
    samples = [float(v) for v in range(1, 101)]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 50) == 51.0  # nearest-rank on 100 samples
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 100) == 100.0
    assert percentile([], 50) == 0.0
    assert percentile([3.0], 99) == 3.0


def test_latency_window_bounds_memory():
    metrics = ServingMetrics(latency_window=4)
    for v in range(10):
        metrics.request_completed(float(v))
    snap = metrics.snapshot()
    assert snap.requests_completed == 10
    assert snap.latency_samples == 4  # only the newest window is kept
    assert snap.max_latency_s == 9.0


def test_batch_and_queue_accounting():
    metrics = ServingMetrics()
    metrics.batch_dispatched(4)
    metrics.batch_dispatched(2)
    metrics.queue_depth_changed("q1", 3)
    metrics.queue_depth_changed("q2", 5)
    metrics.queue_depth_changed("q2", 0)
    metrics.request_rejected("queue_full")
    metrics.request_rejected("queue_full")
    metrics.request_rejected("workspace_limit")
    snap = metrics.snapshot()
    assert snap.batches == 2
    assert snap.mean_batch_size == 3.0
    assert snap.max_batch_size == 4
    assert snap.queue_depth == 3  # q2 drained
    assert snap.queue_depth_peak == 5
    assert snap.requests_rejected == 3
    assert snap.rejected_by_reason == {"queue_full": 2, "workspace_limit": 1}


def test_snapshot_is_independent_copy():
    metrics = ServingMetrics()
    metrics.request_submitted()
    snap = metrics.snapshot()
    snap.rejected_by_reason["queue_full"] = 99
    assert metrics.snapshot().rejected_by_reason == {}


def test_thread_safety_of_counters():
    metrics = ServingMetrics()

    def hammer():
        for _ in range(500):
            metrics.request_submitted()
            metrics.request_completed(0.001)
            metrics.batch_dispatched(2)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = metrics.snapshot()
    assert snap.requests_submitted == 4000
    assert snap.requests_completed == 4000
    assert snap.batches == 4000
    assert snap.batched_requests == 8000
