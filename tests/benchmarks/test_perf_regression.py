"""The perf-regression gate's comparison logic and CLI exit codes.

``compare()`` is tested directly on synthetic payloads; the CLI paths
(baseline update, clean pass, injected regression) run ``main()`` with
the simulator patched to an instant cost model, so the full gate —
collect, inject, write artifact, compare, exit code — is exercised
without gpusim.
"""

import json
import os
import sys
import types

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks"))

import perf_regression  # noqa: E402


def _payload(metrics, winner="yield=natural/ldg8/sts6/db2", families=None):
    payload = {
        "device": "RTX2070",
        "iters": 3,
        "families": {
            "f22": {
                "space": "quick",
                "winner": winner,
                "metrics": dict(metrics),
            }
        },
    }
    if families:
        payload["families"].update(families)
    return payload


# ---------------------------------------------------------------------------
# compare()
# ---------------------------------------------------------------------------
def test_compare_clean():
    base = _payload({"a": 1000.0, "b": 2000.0})
    regressions, notes = perf_regression.compare(base, base, tolerance=0.10)
    assert regressions == [] and notes == []


def test_compare_within_tolerance_passes():
    base = _payload({"a": 1000.0})
    fresh = _payload({"a": 1090.0})  # +9% < 10%
    regressions, notes = perf_regression.compare(fresh, base, tolerance=0.10)
    assert regressions == [] and notes == []


def test_compare_flags_regression_beyond_tolerance():
    base = _payload({"a": 1000.0, "b": 2000.0})
    fresh = _payload({"a": 1150.0, "b": 2000.0})  # a: +15% > 10%
    regressions, notes = perf_regression.compare(fresh, base, tolerance=0.10)
    assert len(regressions) == 1
    assert "a" in regressions[0] and "+15.0%" in regressions[0]
    assert notes == []


def test_compare_winner_change_is_a_regression():
    base = _payload({"a": 1000.0})
    fresh = _payload({"a": 1000.0}, winner="yield=cudnn7/ldg2/sts2/db2")
    regressions, _ = perf_regression.compare(fresh, base, tolerance=0.10)
    assert len(regressions) == 1
    assert "winner changed" in regressions[0]


def test_compare_missing_metric_is_a_regression():
    base = _payload({"a": 1000.0, "gone": 500.0})
    fresh = _payload({"a": 1000.0})
    regressions, _ = perf_regression.compare(fresh, base, tolerance=0.10)
    assert regressions == ["[f22] metric disappeared: gone"]


def test_compare_improvement_and_new_metric_are_notes_only():
    base = _payload({"a": 1000.0})
    fresh = _payload({"a": 800.0, "new": 123.0})  # -20% plus a new metric
    regressions, notes = perf_regression.compare(fresh, base, tolerance=0.10)
    assert regressions == []
    assert len(notes) == 2
    assert any("improvement [f22] a" in n for n in notes)
    assert any("new metric" in n for n in notes)


def test_compare_missing_family_fails_loudly():
    f44 = {"f44": {"space": "quick", "winner": "w", "metrics": {"a": 1.0}}}
    base = _payload({"a": 1000.0})  # f22 only — predates the f44 kernels
    fresh = _payload({"a": 1000.0}, families=f44)
    regressions, _ = perf_regression.compare(fresh, base, tolerance=0.10)
    assert len(regressions) == 1
    assert "tile family 'f44'" in regressions[0]
    assert "un-gated" in regressions[0]


def test_migrate_baseline_lifts_flat_schema():
    flat = {
        "device": "RTX2070",
        "space": "quick",
        "iters": 3,
        "winner": "w",
        "metrics": {"a": 1.0},
    }
    lifted = perf_regression.migrate_baseline(flat, "quick")
    assert lifted["schema"] == perf_regression.SCHEMA_VERSION
    assert lifted["spec"] is None  # drift check skipped until regenerated
    profile = lifted["profiles"]["quick"]
    assert set(profile["families"]) == {"f22"}
    assert profile["families"]["f22"]["metrics"] == {"a": 1.0}
    assert profile["iters"] == 3
    # already-migrated payloads pass through untouched
    assert perf_regression.migrate_baseline(lifted, "quick") is lifted


def test_migrate_baseline_lifts_single_profile_families_schema():
    v1 = _payload({"a": 1.0})
    lifted = perf_regression.migrate_baseline(v1, "full")
    assert set(lifted["profiles"]) == {"full"}
    assert lifted["profiles"]["full"]["families"]["f22"]["metrics"] == {"a": 1.0}


# ---------------------------------------------------------------------------
# main(): update -> pass -> injected failure, all against a tmp baseline
# ---------------------------------------------------------------------------
@pytest.fixture
def gate_env(monkeypatch, tmp_path):
    """Patch the simulator + baseline dir; return the CLI arg prefix."""

    def fake_measure(prob, device, tunables, iters=3, num_blocks=None,
                     context=None, tile=None):
        cycles = (
            5000.0
            - 60 * tunables.ldg_interleave
            - 10 * tunables.sts_interleave
            + {"natural": 0, "nvcc8": 60, "cudnn7": 100}[tunables.yield_strategy]
            + (40 if tunables.double_buffer == 1 else 0)
        )
        return types.SimpleNamespace(
            cycles_per_iter=cycles, tflops=1e6 / cycles, sol=0.9
        )

    monkeypatch.setattr("repro.sched.search.measure_main_loop", fake_measure)
    monkeypatch.setattr(
        "repro.sched.search.lint_gate_candidate", lambda *a, **k: None
    )
    # Prefetch batch-runs real simulations (measure_main_loop above is
    # the memoized consumer); with it patched out the full-profile tests
    # stay instant.
    monkeypatch.setattr(
        "repro.sched.search.prefetch_main_loop_sims", lambda *a, **k: 0
    )
    baseline_dir = tmp_path / "baselines"
    monkeypatch.setattr(perf_regression, "BASELINE_DIR", str(baseline_dir))
    out_dir = tmp_path / "results"
    return ["--quick", "--device", "RTX2070", "--out-dir", str(out_dir)], out_dir


def test_gate_missing_baseline_exits_2_with_regen_command(gate_env, capsys):
    argv, _ = gate_env
    assert perf_regression.main(argv) == 2
    err = capsys.readouterr().err
    # The failure must be actionable: name the expected path and the
    # exact regeneration command for this device + profile.
    assert perf_regression.baseline_path("RTX2070") in err
    assert "--device RTX2070 --quick --update-baselines" in err


def test_gate_update_then_pass_then_injected_failure(gate_env, capsys):
    argv, out_dir = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    baseline = json.loads(
        open(perf_regression.baseline_path("RTX2070")).read()
    )
    assert baseline["schema"] == perf_regression.SCHEMA_VERSION
    assert baseline["spec"]["name"] is not None
    families = baseline["profiles"]["quick"]["families"]
    assert set(families) == set(perf_regression.GATED_FAMILIES)
    assert families["f22"]["winner"] == "yield=natural/ldg8/sts6/db2"
    # quick space (12) plus the off-grid Fig. 7-9 axis variants
    assert len(families["f22"]["metrics"]) >= 12
    # the f44 gate covers its space (no f22-figure axis sweeps)
    assert len(families["f44"]["metrics"]) == 12

    assert perf_regression.main(argv) == 0
    assert "2 tile families" in capsys.readouterr().out

    # a 15% injected slowdown must fail the 10% gate on every metric
    assert perf_regression.main(argv + ["--inject-regression", "15"]) == 1
    err = capsys.readouterr().err
    assert "PERF REGRESSION" in err
    assert "+15.0%" in err
    # the fresh measurements are still written for the CI artifact
    bench = json.loads(
        (out_dir / "BENCH_sched_regression_rtx2070.json").read_text()
    )
    assert bench["injected_regression_pct"] == 15.0


def test_gate_flat_baseline_fails_on_missing_f44(gate_env, capsys):
    """A pre-tile-family baseline migrates, then loudly fails the gate."""
    argv, _ = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    path = perf_regression.baseline_path("RTX2070")
    full = json.loads(open(path).read())
    f22 = full["profiles"]["quick"]["families"]["f22"]
    flat = {
        "device": full["device"],
        "iters": full["profiles"]["quick"]["iters"],
        "space": f22["space"],
        "winner": f22["winner"],
        "metrics": f22["metrics"],
    }
    with open(path, "w") as fh:
        json.dump(flat, fh)
    assert perf_regression.main(argv) == 1
    assert "tile family 'f44'" in capsys.readouterr().err


def test_gate_rejects_baseline_from_other_space(gate_env):
    argv, _ = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    path = perf_regression.baseline_path("RTX2070")
    stale = json.loads(open(path).read())
    stale["profiles"]["quick"]["families"]["f22"]["space"] = "some-other-space"
    with open(path, "w") as fh:
        json.dump(stale, fh)
    assert perf_regression.main(argv) == 2


def test_gate_missing_profile_is_actionable(gate_env, capsys):
    """A baseline with only the quick profile can't gate a full run."""
    argv, _ = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    full_argv = [a for a in argv if a != "--quick"]
    assert perf_regression.main(full_argv) == 2
    err = capsys.readouterr().err
    assert "no 'full' profile" in err
    assert "--device RTX2070 --update-baselines" in err


def test_gate_update_preserves_other_profiles(gate_env):
    argv, _ = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    full_argv = [a for a in argv if a != "--quick"]
    assert perf_regression.main(full_argv + ["--update-baselines"]) == 0
    baseline = json.loads(
        open(perf_regression.baseline_path("RTX2070")).read()
    )
    assert set(baseline["profiles"]) == {"quick", "full"}
    # the full f22 grid is 54 points; quick is the 12-point subset
    quick = baseline["profiles"]["quick"]["families"]["f22"]
    full = baseline["profiles"]["full"]["families"]["f22"]
    assert len(full["metrics"]) > len(quick["metrics"])
    # both profiles still gate cleanly after the merge
    assert perf_regression.main(argv) == 0
    assert perf_regression.main(full_argv) == 0


def test_gate_rejects_device_spec_drift(gate_env, capsys):
    argv, _ = gate_env
    assert perf_regression.main(argv + ["--update-baselines"]) == 0
    path = perf_regression.baseline_path("RTX2070")
    stale = json.loads(open(path).read())
    stale["spec"]["num_sms"] = stale["spec"]["num_sms"] + 1
    with open(path, "w") as fh:
        json.dump(stale, fh)
    assert perf_regression.main(argv) == 2
    err = capsys.readouterr().err
    assert "different RTX2070 spec" in err
    assert "num_sms" in err


def test_gate_accepts_device_aliases(gate_env):
    """--device goes through the registry: aliases and case both work."""
    argv, _ = gate_env
    alias_argv = ["--quick" if a == "--quick" else a for a in argv]
    alias_argv[alias_argv.index("RTX2070")] = "turing"
    assert perf_regression.main(alias_argv + ["--update-baselines"]) == 0
    # the baseline lands under the canonical key, not the alias
    assert os.path.exists(perf_regression.baseline_path("RTX2070"))
    assert perf_regression.main(argv) == 0


def test_gate_unknown_device_exits_2(gate_env, capsys):
    argv, _ = gate_env
    argv = list(argv)
    argv[argv.index("RTX2070")] = "H100"
    assert perf_regression.main(argv) == 2
    assert "unknown device" in capsys.readouterr().err.lower()
