"""The benchmark process-pool fan-out: determinism, sizing, fallbacks."""

import multiprocessing
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks"))

import parallel  # noqa: E402

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def test_serial_and_parallel_agree_in_order():
    items = list(range(20))
    serial = parallel.parallel_map(_square, items, workers=1)
    assert serial == [x * x for x in items]
    if HAVE_FORK:
        pooled = parallel.parallel_map(_square, items, workers=2)
        assert pooled == serial  # deterministic input order, not completion order


def test_single_item_runs_in_process():
    assert parallel.parallel_map(_square, [7], workers=8) == [49]


def test_empty_items():
    assert parallel.parallel_map(_square, [], workers=4) == []


def test_default_workers_bounds(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BENCH_PARALLEL", raising=False)
    cpus = os.cpu_count() or 1
    assert parallel.default_workers(100) == max(1, min(cpus, 100))
    assert parallel.default_workers(1) == 1
    assert parallel.default_workers(0) == 1  # never below one worker


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
    assert parallel.default_workers(100) == 3
    assert parallel.default_workers(2) == 2  # still capped by the item count


@pytest.mark.parametrize("value", ["0", "false", "off", "no"])
def test_parallel_kill_switch(monkeypatch, value):
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", value)
    assert parallel.default_workers(100) == 1
    # parallel_map then takes the serial path (results still correct).
    assert parallel.parallel_map(_square, [1, 2, 3]) == [1, 4, 9]


def test_default_workers_malformed_env_falls_back(monkeypatch):
    # Shell junk in REPRO_BENCH_WORKERS must degrade to cpu_count with a
    # warning, not crash the caller with ValueError (regression).
    monkeypatch.delenv("REPRO_BENCH_PARALLEL", raising=False)
    cpus = os.cpu_count() or 1
    for value in ("auto", "8x", "two", ""):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", value)
        if value.strip():
            with pytest.warns(RuntimeWarning, match="not an integer"):
                assert parallel.default_workers(100) == max(1, min(cpus, 100))
        else:
            assert parallel.default_workers(100) == max(1, min(cpus, 100))


def test_default_workers_tolerates_whitespace(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_BENCH_WORKERS", " 3 ")
    assert parallel.default_workers(100) == 3


def test_default_workers_nonpositive_env_falls_back(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_PARALLEL", raising=False)
    cpus = os.cpu_count() or 1
    for value in ("-4", "0"):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", value)
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert parallel.default_workers(100) == max(1, min(cpus, 100))


def test_parallel_map_slot_hooks_bound_concurrency():
    # At most `workers` items may sit between on_start and on_done; the
    # pipelined session's workspace accounting relies on this bound.
    import threading

    live = 0
    peak = 0
    lock = threading.Lock()

    def on_start(i, item):
        nonlocal live, peak
        with lock:
            live += 1
            peak = max(peak, live)

    def on_done(i):
        nonlocal live
        with lock:
            live -= 1

    results = parallel.parallel_map(
        _square, list(range(12)), workers=2,
        on_start=on_start, on_done=on_done,
    )
    assert results == [x * x for x in range(12)]
    assert live == 0  # every on_done ran before parallel_map returned
    assert peak <= 2


def test_parallel_map_slot_hooks_serial_path():
    calls = []
    out = parallel.parallel_map(
        _square, [1, 2, 3], workers=1,
        on_start=lambda i, item: calls.append(("start", i)),
        on_done=lambda i: calls.append(("done", i)),
    )
    assert out == [1, 4, 9]
    assert calls == [("start", 0), ("done", 0), ("start", 1), ("done", 1),
                     ("start", 2), ("done", 2)]
