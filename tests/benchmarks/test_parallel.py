"""The benchmark process-pool fan-out: determinism, sizing, fallbacks."""

import multiprocessing
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks"))

import parallel  # noqa: E402

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def test_serial_and_parallel_agree_in_order():
    items = list(range(20))
    serial = parallel.parallel_map(_square, items, workers=1)
    assert serial == [x * x for x in items]
    if HAVE_FORK:
        pooled = parallel.parallel_map(_square, items, workers=2)
        assert pooled == serial  # deterministic input order, not completion order


def test_single_item_runs_in_process():
    assert parallel.parallel_map(_square, [7], workers=8) == [49]


def test_empty_items():
    assert parallel.parallel_map(_square, [], workers=4) == []


def test_default_workers_bounds(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BENCH_PARALLEL", raising=False)
    cpus = os.cpu_count() or 1
    assert parallel.default_workers(100) == max(1, min(cpus, 100))
    assert parallel.default_workers(1) == 1
    assert parallel.default_workers(0) == 1  # never below one worker


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
    assert parallel.default_workers(100) == 3
    assert parallel.default_workers(2) == 2  # still capped by the item count


@pytest.mark.parametrize("value", ["0", "false", "off", "no"])
def test_parallel_kill_switch(monkeypatch, value):
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", value)
    assert parallel.default_workers(100) == 1
    # parallel_map then takes the serial path (results still correct).
    assert parallel.parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
