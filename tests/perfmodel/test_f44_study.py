"""The fused F(4×4, 3×3) design study (§8.1 future work)."""

import pytest

from repro.gpusim import RTX2070, V100
from repro.models import resnet_layer
from repro.perfmodel.f44_study import (
    F44Blocking,
    attainable_sol,
    best_feasible,
    enumerate_blockings,
    f22_reference_blocking_infeasible,
    projected_fused_f44_time,
    projected_speedup_over_f22,
)


def test_f22_blocking_does_not_transplant():
    b = f22_reference_blocking_infeasible()
    assert b.registers > 253
    assert b.smem_bytes > 64 * 1024
    assert not b.feasible


def test_accumulator_formula():
    # 36·64·32/256 = 288 accumulators per thread at the F(2×2) blocking.
    assert F44Blocking(64, 32, 8).accumulators == 288


def test_some_blocking_is_feasible():
    best = best_feasible()
    assert best is not None
    assert best.registers <= 253 and best.smem_bytes <= 64 * 1024


def test_all_feasible_blockings_memory_bound():
    """The study's punchline: no feasible F(4×4) blocking reaches the
    F(2×2) kernel's 10.67 flops/B."""
    for b in enumerate_blockings():
        if b.feasible:
            assert b.arithmetic_intensity < 10.67


def test_attainable_sol_below_compute_bound():
    best = best_feasible()
    assert 0.3 < attainable_sol(best, V100) < 0.92


def test_projection_beats_f22_but_below_16_over_9():
    """4/2.25 = 1.78× is the ceiling; overcompute and SOL eat into it."""
    p = resnet_layer("Conv3", 64)
    for dev in (V100, RTX2070):
        s = projected_speedup_over_f22(p, dev)
        assert 1.0 < s < 16 / 9 + 1e-9


def test_conv5_projection_hurt_by_overcompute():
    """7×7 outputs pay (8/7)² under F(2×2) but (8/7)² under F(4×4) too —
    the F(4×4) tiles overshoot 7 to 8 as well, so the gain narrows."""
    gain_conv3 = projected_speedup_over_f22(resnet_layer("Conv3", 64), V100)
    gain_conv5 = projected_speedup_over_f22(resnet_layer("Conv5", 64), V100)
    assert gain_conv5 <= gain_conv3 + 1e-9


def test_projected_time_positive_and_scales():
    a = projected_fused_f44_time(resnet_layer("Conv3", 32), V100)
    b = projected_fused_f44_time(resnet_layer("Conv3", 128), V100)
    assert 0 < a < b
    assert b == pytest.approx(4 * a, rel=0.01)
