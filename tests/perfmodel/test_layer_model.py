"""The simulator-driven whole-layer model."""

import pytest

from repro.gpusim import RTX2070, V100
from repro.models import resnet_layer
from repro.perfmodel import our_layer_performance

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def conv3_n32():
    return our_layer_performance(resnet_layer("Conv3", 32), V100)


def test_basic_sanity(conv3_n32):
    r = conv3_n32
    assert r.time_s > 0
    assert 0 < r.sol_main_loop <= 1
    assert 0 < r.sol_total <= r.sol_main_loop + 1e-9
    assert r.iters == 128 // 8
    assert r.occupancy == 1  # 253 registers


def test_blocks_and_waves(conv3_n32):
    r = conv3_n32
    # Conv3N32: 14×14 tiles × 32 / 32 per block × (128/64) k-blocks.
    assert r.blocks == 14 * 14 * 32 // 32 * 2
    assert r.waves == -(-r.blocks // (80 * r.occupancy))


def test_time_scales_with_batch():
    a = our_layer_performance(resnet_layer("Conv3", 32), V100)
    b = our_layer_performance(resnet_layer("Conv3", 128), V100)
    assert 3.5 < b.time_s / a.time_s < 4.5


def test_time_scales_with_channels():
    """More channels → more main-loop iterations, sublinearly more time
    (the per-block overhead amortizes)."""
    a = our_layer_performance(resnet_layer("Conv2", 32), V100)  # C=64
    b = our_layer_performance(resnet_layer("Conv3", 32), V100)  # C=128
    assert b.iters == 2 * a.iters
    per_iter_a = a.time_s / a.blocks / a.iters
    per_iter_b = b.time_s / b.blocks / b.iters
    assert per_iter_b < per_iter_a  # overhead amortized


def test_devices_rank_by_peak():
    v = our_layer_performance(resnet_layer("Conv3", 64), V100)
    t = our_layer_performance(resnet_layer("Conv3", 64), RTX2070)
    assert v.time_s < t.time_s
    assert v.tflops_effective > t.tflops_effective


def test_small_grid_dilutes_sol():
    """Conv5N32's 128 blocks on 80 SMs: the tail wave drops SOL (§7.2)."""
    small = our_layer_performance(resnet_layer("Conv5", 32), V100)
    big = our_layer_performance(resnet_layer("Conv5", 128), V100)
    assert small.sol_main_loop < big.sol_main_loop


def test_measurement_cache_reused():
    from repro.perfmodel import layer_model

    layer_model.clear_cache()
    our_layer_performance(resnet_layer("Conv2", 32), V100)
    n_entries = len(layer_model._cache)
    our_layer_performance(resnet_layer("Conv5", 128), V100)
    assert len(layer_model._cache) == n_entries  # same (device, tunables)
