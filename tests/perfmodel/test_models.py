"""Analytical models: roofline, workspace, break-even, cuDNN baselines."""

import pytest

from repro.common import ConvProblem, ModelError
from repro.gpusim import RTX2070, V100
from repro.models import paper_layers, resnet_layer
from repro.perfmodel import (
    ALGO_ORDER,
    PAPER_CLAIMS,
    PAPER_FIG14_WORKSPACE_MB,
    break_even_k,
    cudnn_time,
    direct_conv_intensity,
    faster_variant,
    fused_time,
    gemm_step_intensity,
    nonfused_time,
    paper_points,
    roofline_table,
    tile_overcompute,
    transform_intensity,
    workspace_mb,
)


# ---------------------------------------------------------------------------
# Roofline (Fig. 2)
# ---------------------------------------------------------------------------
def test_gemm_step_intensities_match_section_3_3():
    assert gemm_step_intensity(32) == pytest.approx(8.0)
    assert gemm_step_intensity(64) == pytest.approx(10.67, abs=0.01)
    gain = gemm_step_intensity(64) / gemm_step_intensity(32)
    assert gain == pytest.approx(PAPER_CLAIMS["bk64_intensity_gain"], abs=0.01)


def test_transform_steps_are_memory_bound():
    for kind in ("ITF", "FTF", "OTF"):
        point = [p for p in paper_points() if p.name == kind][0]
        assert point.bound(V100, "dram") == "memory"
        assert point.intensity < 0.5  # far-left of Fig. 2


def test_bk64_compute_bound_at_l2_but_not_dram():
    """§3.3's argument: bk=64 needs the L2 to be compute-bound on V100."""
    point = [p for p in paper_points() if "bk=64" in p.name and "GEMM" in p.name][0]
    assert point.bound(V100, "l2") == "compute"
    assert point.bound(V100, "dram") == "memory"


def test_direct_conv_right_of_winograd_gemm():
    assert direct_conv_intensity(64) > gemm_step_intensity(64)


def test_roofline_table_rows():
    rows = roofline_table(V100)
    assert len(rows) == 6
    assert all(r["dram_tflops"] <= V100.peak_fp32_tflops + 1e-9 for r in rows)


def test_bad_transform_kind():
    with pytest.raises(ValueError):
        transform_intensity("XXX")


# ---------------------------------------------------------------------------
# Workspace (Fig. 14)
# ---------------------------------------------------------------------------
def test_our_workspace_matches_paper_exactly():
    """§7.3: 0.25 MB (Conv2), 1 MB (Conv3), 4 MB (Conv4), 16 MB (Conv5)."""
    for family, mb in PAPER_CLAIMS["ours_workspace_mb"].items():
        prob = resnet_layer(family, 32)
        assert workspace_mb(prob, "OURS") == pytest.approx(mb)


def test_implicit_gemm_zero_workspace():
    prob = resnet_layer("Conv2", 32)
    assert workspace_mb(prob, "IMPLICIT_GEMM") == 0.0
    assert workspace_mb(prob, "IMPLICIT_PRECOMP_GEMM") < 0.01


def test_explicit_gemm_workspace_matches_paper():
    """im2col is exactly 9× the activations — cuDNN reports the same."""
    for name, col in (("Conv2N32", 2), ("Conv5N128", 2)):
        prob = resnet_layer(name.split("N")[0], int(name.split("N")[1]))
        ours = workspace_mb(prob, "GEMM")
        paper = PAPER_FIG14_WORKSPACE_MB[name][ALGO_ORDER.index("GEMM")]
        assert ours == pytest.approx(paper, rel=0.01)


def test_nonfused_workspace_same_magnitude_as_paper():
    prob = resnet_layer("Conv2", 32)
    ours = workspace_mb(prob, "WINOGRAD_NONFUSED")
    paper = PAPER_FIG14_WORKSPACE_MB["Conv2N32"][ALGO_ORDER.index("WINOGRAD_NONFUSED")]
    assert 0.5 < ours / paper < 2.0


def test_fft_workspace_dominates():
    for name in ("Conv2", "Conv5"):
        prob = resnet_layer(name, 32)
        assert workspace_mb(prob, "FFT") > workspace_mb(prob, "WINOGRAD_NONFUSED")
        assert workspace_mb(prob, "FFT") > 10 * workspace_mb(prob, "OURS")


def test_workspace_scales_with_batch():
    a = workspace_mb(resnet_layer("Conv2", 32), "GEMM")
    b = workspace_mb(resnet_layer("Conv2", 128), "GEMM")
    assert b == pytest.approx(4 * a)
    # Our fused workspace is batch-independent (filters only).
    assert workspace_mb(resnet_layer("Conv2", 32), "OURS") == workspace_mb(
        resnet_layer("Conv2", 128), "OURS"
    )


# ---------------------------------------------------------------------------
# Break-even (§8.1)
# ---------------------------------------------------------------------------
def test_break_even_k_v100():
    assert break_even_k(V100) == pytest.approx(
        PAPER_CLAIMS["break_even_k_v100"], abs=2
    )


def test_break_even_k_rtx2070():
    assert break_even_k(RTX2070) == pytest.approx(
        PAPER_CLAIMS["break_even_k_rtx2070"], abs=5
    )


def test_variant_choice_flips_at_break_even():
    dev = V100
    below = ConvProblem(n=32, c=64, h=28, w=28, k=64)
    above = ConvProblem(n=32, c=64, h=28, w=28, k=512)
    assert faster_variant(below, dev) == "fused_f2x2"
    assert faster_variant(above, dev) == "nonfused_f4x4"


def test_break_even_independent_of_nchw():
    dev = V100
    k = int(break_even_k(dev))
    for scale in (1, 4):
        p_lo = ConvProblem(n=8 * scale, c=32, h=14, w=14, k=k - 30)
        p_hi = ConvProblem(n=8 * scale, c=32, h=14, w=14, k=k + 30)
        assert fused_time(p_lo, dev) < nonfused_time(p_lo, dev)
        assert fused_time(p_hi, dev) > nonfused_time(p_hi, dev)


# ---------------------------------------------------------------------------
# cuDNN baseline models
# ---------------------------------------------------------------------------
def test_all_algorithms_return_positive_times():
    prob = resnet_layer("Conv3", 64)
    for algo in ("FFT", "FFT_TILING", "GEMM", "IMPLICIT_GEMM",
                 "IMPLICIT_PRECOMP_GEMM", "WINOGRAD", "WINOGRAD_NONFUSED"):
        assert cudnn_time(prob, V100, algo) > 0
        assert cudnn_time(prob, RTX2070, algo) > 0


def test_unknown_algorithm_raises():
    with pytest.raises(ModelError):
        cudnn_time(resnet_layer("Conv2", 32), V100, "NOPE")


def test_cudnn_winograd_beats_gemm_except_conv5():
    """Table 2's shape: Winograd ≥ GEMM on Conv2-4, loses on Conv5 N≥64."""
    for layer in ("Conv2", "Conv3", "Conv4"):
        p = resnet_layer(layer, 64)
        assert cudnn_time(p, V100, "WINOGRAD") < cudnn_time(
            p, V100, "IMPLICIT_PRECOMP_GEMM"
        )
    p = resnet_layer("Conv5", 96)
    assert cudnn_time(p, V100, "WINOGRAD") > cudnn_time(
        p, V100, "IMPLICIT_PRECOMP_GEMM"
    )


def test_cudnn_winograd_turing_penalty():
    """§7.1: the cuDNN kernel is relatively slower on Turing (occupancy)."""
    p = resnet_layer("Conv3", 64)
    v_ratio = cudnn_time(p, V100, "WINOGRAD") / cudnn_time(
        p, V100, "IMPLICIT_PRECOMP_GEMM"
    )
    t_ratio = cudnn_time(p, RTX2070, "WINOGRAD") / cudnn_time(
        p, RTX2070, "IMPLICIT_PRECOMP_GEMM"
    )
    assert t_ratio > v_ratio


def test_implicit_gemm_slower_than_precomp():
    p = resnet_layer("Conv2", 32)
    assert cudnn_time(p, V100, "IMPLICIT_GEMM") > 1.5 * cudnn_time(
        p, V100, "IMPLICIT_PRECOMP_GEMM"
    )


def test_explicit_gemm_pays_lowering():
    p = resnet_layer("Conv2", 32)
    assert cudnn_time(p, V100, "GEMM") > cudnn_time(
        p, V100, "IMPLICIT_PRECOMP_GEMM"
    )


def test_fft_worst_on_conv5():
    """Figures 12-13: FFT degrades most on the small-image layer."""
    r5 = cudnn_time(resnet_layer("Conv5", 32), V100, "FFT") / cudnn_time(
        resnet_layer("Conv5", 32), V100, "IMPLICIT_PRECOMP_GEMM"
    )
    r3 = cudnn_time(resnet_layer("Conv3", 32), V100, "FFT") / cudnn_time(
        resnet_layer("Conv3", 32), V100, "IMPLICIT_PRECOMP_GEMM"
    )
    assert r5 > r3


def test_nonfused_wins_on_conv5_only():
    """Figures 12-13 col WINOGRAD_NONFUSED: <1 ratio appears only on Conv5."""
    for layer, batch in (("Conv2", 64), ("Conv3", 64)):
        p = resnet_layer(layer, batch)
        assert cudnn_time(p, V100, "WINOGRAD_NONFUSED") > cudnn_time(
            p, V100, "WINOGRAD"
        ) / 2.3  # nonfused never dramatically wins on big images


def test_tile_overcompute():
    assert tile_overcompute(resnet_layer("Conv2", 32)) == pytest.approx(1.0)
    assert tile_overcompute(resnet_layer("Conv5", 32)) == pytest.approx(
        (8 / 7) ** 2
    )


def test_paper_layers_enumeration():
    layers = paper_layers()
    assert len(layers) == 16
    assert layers[0].name == "Conv2N32" and layers[-1].name == "Conv5N128"
