"""§8.3 fp16 projection."""

import pytest

from repro.gpusim import RTX2070, V100
from repro.perfmodel.extensions import Fp16Projection, fp16_projection_summary


def test_bn_doubles_per_section_8_3():
    proj = Fp16Projection()
    assert proj.bn == 64 and proj.bk == 64


def test_intensity_doubles():
    """Half the bytes at bn=64's flop rate: 2·(bk·bn)/(bk+bn)/2 flops/B."""
    proj = Fp16Projection()
    # bk=bn=64: 2·16·64·64·8 flops over 16·128·8·2 bytes = 32 flops/B.
    assert proj.arithmetic_intensity == pytest.approx(32.0)
    summary = fp16_projection_summary(V100)
    assert (
        summary["fp16_intensity_flops_per_byte"]
        == 3 * summary["fp32_intensity_flops_per_byte"]
    )


def test_peak_doubles():
    assert Fp16Projection().peak_tflops(V100) == pytest.approx(
        2 * V100.peak_fp32_tflops
    )


def test_smem_still_fits_turing():
    """fp16 halves element size: the doubled bn block still fits 64 KB."""
    proj = Fp16Projection()
    assert proj.smem_bytes == 16 * 8 * 128 * 2  # 32 KB
    assert fp16_projection_summary(RTX2070)["fits_turing_smem"]


def test_hfma2_count():
    """Same 1024 FMA-issues per thread, each now two half lanes."""
    assert Fp16Projection().ffma2_per_thread_per_iter == 1024
