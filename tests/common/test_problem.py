"""ConvProblem geometry and accounting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConvConfigError, ConvProblem
from repro.models import resnet_layer


def test_resnet_conv2_geometry():
    p = resnet_layer("Conv2", 32)
    assert (p.n, p.c, p.h, p.w, p.k) == (32, 64, 56, 56, 64)
    assert p.out_h == 56 and p.out_w == 56  # SAME padding
    assert p.name == "Conv2N32"


def test_output_size_shrinks_without_padding():
    p = ConvProblem(n=1, c=1, h=8, w=8, k=1, pad=0)
    assert p.out_h == 6 and p.out_w == 6


def test_tiles_round_up():
    p = resnet_layer("Conv5", 32)  # 7×7 output
    assert p.tiles_h(2) == 4 and p.tiles_w(2) == 4
    assert p.tiles_per_image(2) == 16
    assert p.total_tiles(2) == 16 * 32


def test_direct_flops_conv2():
    p = resnet_layer("Conv2", 32)
    expected = 2 * 32 * 64 * 56 * 56 * 64 * 9
    assert p.direct_flops == expected


def test_arithmetic_reduction_f2_is_2_25_for_even_sizes():
    p = resnet_layer("Conv2", 32)  # 56 divisible by 2: no tile waste
    assert p.arithmetic_reduction(2) == pytest.approx(2.25)


def test_arithmetic_reduction_f2_conv5_pays_overcompute():
    p = resnet_layer("Conv5", 32)  # 7×7 → 8×8 tiles
    assert p.arithmetic_reduction(2) == pytest.approx(2.25 * (7 / 8) ** 2)


def test_arithmetic_reduction_f4():
    p = resnet_layer("Conv2", 32)
    assert p.arithmetic_reduction(4) == pytest.approx(4.0)


def test_winograd_multiplies_f2():
    p = ConvProblem(n=1, c=1, h=4, w=4, k=1)
    # 2×2 tiles of 4×4 → 4 tiles × 16 multiplies
    assert p.winograd_multiplies(2) == 4 * 16


def test_byte_accounting():
    p = ConvProblem(n=2, c=3, h=4, w=5, k=6)
    assert p.input_bytes == 4 * 2 * 3 * 4 * 5
    assert p.filter_bytes == 4 * 6 * 3 * 9
    assert p.output_bytes == 4 * 2 * 6 * 4 * 5
    assert p.transformed_filter_bytes(2) == 4 * 3 * 6 * 16


def test_with_batch_renames():
    p = resnet_layer("Conv3", 32)
    q = p.with_batch(96)
    assert q.n == 96 and q.name == "Conv3N96"
    assert q.c == p.c and q.h == p.h


@pytest.mark.parametrize("field", ["n", "c", "h", "w", "k"])
def test_rejects_nonpositive(field):
    kwargs = dict(n=1, c=1, h=4, w=4, k=1)
    kwargs[field] = 0
    with pytest.raises(ConvConfigError):
        ConvProblem(**kwargs)


def test_accepts_stride_2_for_dwm():
    # Stride 2 is admitted for the DWM decomposition path.
    p = ConvProblem(n=1, c=1, h=9, w=9, k=1, stride=2)
    assert p.out_h == 5 and p.out_w == 5


def test_rejects_stride_3():
    with pytest.raises(ConvConfigError):
        ConvProblem(n=1, c=1, h=9, w=9, k=1, stride=3)


def test_rejects_negative_pad():
    with pytest.raises(ConvConfigError):
        ConvProblem(n=1, c=1, h=4, w=4, k=1, pad=-1)


@given(
    n=st.integers(1, 16),
    c=st.integers(1, 32),
    h=st.integers(3, 64),
    w=st.integers(3, 64),
    k=st.integers(1, 32),
    m=st.sampled_from([2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_tiles_cover_output(n, c, h, w, k, m):
    p = ConvProblem(n=n, c=c, h=h, w=w, k=k)
    assert p.tiles_h(m) * m >= p.out_h
    assert (p.tiles_h(m) - 1) * m < p.out_h
    assert p.tiles_w(m) * m >= p.out_w
    assert p.total_tiles(m) == p.tiles_h(m) * p.tiles_w(m) * n


@given(
    n=st.integers(1, 8),
    c=st.integers(1, 16),
    hw=st.integers(4, 32),
    k=st.integers(1, 16),
)
@settings(max_examples=40, deadline=None)
def test_winograd_multiplies_never_below_ideal(n, c, hw, k):
    """Tile overcompute can only reduce the reduction factor below 2.25."""
    p = ConvProblem(n=n, c=c, h=hw, w=hw, k=k)
    assert p.arithmetic_reduction(2) <= 2.25 + 1e-9


def test_label_fallback():
    p = ConvProblem(n=2, c=3, h=4, w=5, k=6)
    assert "conv3x4x5k6n2" == p.label()
