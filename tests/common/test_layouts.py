"""Layout converters: round trips, contiguity, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    LayoutError,
    chwn_to_nchw,
    crsk_to_kcrs,
    kcrs_to_crsk,
    khwn_to_nkhw,
    nchw_to_chwn,
    nchw_to_nhwc,
    nhwc_to_nchw,
    nkhw_to_khwn,
)

dims = st.integers(1, 6)


@given(n=dims, c=dims, h=dims, w=dims)
@settings(max_examples=30, deadline=None)
def test_chwn_roundtrip(n, c, h, w):
    x = np.arange(n * c * h * w, dtype=np.float32).reshape(n, c, h, w)
    assert np.array_equal(chwn_to_nchw(nchw_to_chwn(x)), x)


@given(n=dims, c=dims, h=dims, w=dims)
@settings(max_examples=30, deadline=None)
def test_nhwc_roundtrip(n, c, h, w):
    x = np.arange(n * c * h * w, dtype=np.float32).reshape(n, c, h, w)
    assert np.array_equal(nhwc_to_nchw(nchw_to_nhwc(x)), x)


@given(k=dims, c=dims)
@settings(max_examples=30, deadline=None)
def test_filter_roundtrip(k, c):
    f = np.arange(k * c * 9, dtype=np.float32).reshape(k, c, 3, 3)
    assert np.array_equal(crsk_to_kcrs(kcrs_to_crsk(f)), f)


@given(n=dims, k=dims, h=dims, w=dims)
@settings(max_examples=30, deadline=None)
def test_output_roundtrip(n, k, h, w):
    y = np.arange(n * k * h * w, dtype=np.float32).reshape(k, h, w, n)
    assert np.array_equal(nkhw_to_khwn(khwn_to_nkhw(y)), y)


def test_chwn_batch_is_fastest():
    """CHWN exists so consecutive batch elements are adjacent in memory."""
    x = np.zeros((4, 2, 3, 3), dtype=np.float32)
    chwn = nchw_to_chwn(x)
    assert chwn.shape == (2, 3, 3, 4)
    assert chwn.strides[-1] == 4  # batch stride = one float


def test_converters_return_contiguous():
    x = np.zeros((2, 3, 4, 5), dtype=np.float32)
    assert nchw_to_chwn(x).flags["C_CONTIGUOUS"]
    assert kcrs_to_crsk(np.zeros((2, 3, 3, 3), dtype=np.float32)).flags[
        "C_CONTIGUOUS"
    ]


def test_semantics_of_chwn():
    x = np.random.default_rng(0).random((2, 3, 4, 5)).astype(np.float32)
    chwn = nchw_to_chwn(x)
    assert chwn[1, 2, 3, 0] == x[0, 1, 2, 3]


@pytest.mark.parametrize(
    "fn", [nchw_to_chwn, chwn_to_nchw, kcrs_to_crsk, khwn_to_nkhw]
)
def test_rank_checked(fn):
    with pytest.raises(LayoutError):
        fn(np.zeros((2, 3, 4), dtype=np.float32))
