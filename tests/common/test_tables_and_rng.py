"""Table formatting and deterministic RNG helpers."""

import numpy as np

from repro.common import (
    ConvProblem,
    conv_tolerance,
    format_grid,
    format_table,
    make_rng,
    random_activation,
    random_filter,
    series_summary,
)


def test_format_table_alignment():
    out = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "2.50" in out and "0.12" in out
    header, sep, row1, row2 = lines[2], lines[3], lines[4], lines[5]
    assert len(header) == len(sep) == len(row1) == len(row2)


def test_format_table_custom_float_fmt():
    out = format_table(["x"], [[1.23456]], float_fmt="{:.4f}")
    assert "1.2346" in out


def test_format_grid_has_row_labels():
    out = format_grid(["r1", "r2"], ["c1"], [[1.0], [2.0]])
    assert "r1" in out and "r2" in out and "c1" in out


def test_series_summary():
    s = series_summary("x", [1.0, 2.0, 3.0])
    assert "min=1.000" in s and "max=3.000" in s and "mean=2.000" in s


def test_rng_deterministic():
    p = ConvProblem(n=2, c=3, h=4, w=4, k=5)
    a = random_activation(p, make_rng(9))
    b = random_activation(p, make_rng(9))
    assert np.array_equal(a, b)
    assert a.shape == (2, 3, 4, 4) and a.dtype == np.float32
    assert a.min() >= -1.0 and a.max() < 1.0


def test_filter_shape_and_range():
    p = ConvProblem(n=1, c=2, h=4, w=4, k=3)
    f = random_filter(p, make_rng(0))
    assert f.shape == (3, 2, 3, 3)
    assert abs(f).max() <= 1.0


def test_tolerance_grows_with_reduction_length():
    small = ConvProblem(n=1, c=1, h=4, w=4, k=1)
    big = ConvProblem(n=1, c=512, h=4, w=4, k=1)
    assert conv_tolerance(big) > conv_tolerance(small)
