"""ResNet/VGG layer tables."""

import pytest

from repro.models import (
    PAPER_BATCH_SIZES,
    RESNET_LAYER_SHAPES,
    VGG19_LAYER_SHAPES,
    paper_layers,
    paper_layers_batch_major,
    resnet_layer,
    vgg_layer,
    vgg_layers,
)


def test_table1_shapes():
    assert RESNET_LAYER_SHAPES["Conv2"] == dict(h=56, w=56, c=64, k=64)
    assert RESNET_LAYER_SHAPES["Conv5"] == dict(h=7, w=7, c=512, k=512)


def test_channel_doubling_halving_pattern():
    """ResNet halves spatial size and doubles channels per stage."""
    layers = [RESNET_LAYER_SHAPES[f"Conv{i}"] for i in (2, 3, 4, 5)]
    for a, b in zip(layers, layers[1:]):
        assert b["c"] == 2 * a["c"] and b["h"] == a["h"] // 2


def test_paper_batches():
    assert PAPER_BATCH_SIZES == (32, 64, 96, 128)


def test_layer_naming():
    assert resnet_layer("Conv3", 96).name == "Conv3N96"


def test_paper_layers_orderings():
    layer_major = [p.name for p in paper_layers()]
    batch_major = [p.name for p in paper_layers_batch_major()]
    assert layer_major[:4] == ["Conv2N32", "Conv2N64", "Conv2N96", "Conv2N128"]
    assert batch_major[:4] == ["Conv2N32", "Conv3N32", "Conv4N32", "Conv5N32"]
    assert sorted(layer_major) == sorted(batch_major)


def test_unknown_layer():
    with pytest.raises(KeyError):
        resnet_layer("Conv9", 32)


def test_vgg_layers_meet_kernel_requirements():
    """§8.3: VGG's N·K·C divisibility makes the kernel's sweet spot."""
    for prob in vgg_layers(32):
        assert prob.n % 32 == 0
        assert prob.k % 64 == 0
        assert prob.c % 8 == 0


def test_vgg_shapes():
    assert VGG19_LAYER_SHAPES["VggConv1_2"]["h"] == 224
    p = vgg_layer("VggConv5_1", 64)
    assert p.c == 512 and p.h == 14
