"""Property-based tests on the memory models' invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GlobalMemory, bank_conflict_report, coalesced_sectors

addr_arrays = st.lists(
    st.integers(0, 2047).map(lambda w: 4 * w), min_size=32, max_size=32
).map(lambda xs: np.array(xs, dtype=np.int64))

widths = st.sampled_from([4, 8, 16])


@given(addrs=addr_arrays, width=widths)
@settings(max_examples=80, deadline=None)
def test_conflict_cycles_at_least_phases(addrs, width):
    addrs = (addrs // width) * width  # respect alignment
    report = bank_conflict_report(addrs, width, np.ones(32, bool))
    assert report.cycles >= report.phases
    assert report.phases == width // 4
    assert report.conflicts == report.cycles - report.phases


@given(addrs=addr_arrays, width=widths)
@settings(max_examples=60, deadline=None)
def test_conflicts_bounded_by_lanes_per_phase(addrs, width):
    addrs = (addrs // width) * width
    report = bank_conflict_report(addrs, width, np.ones(32, bool))
    lanes_per_phase = 32 // report.phases
    words_per_lane = width // 4
    assert report.cycles <= report.phases * lanes_per_phase * words_per_lane


@given(addrs=addr_arrays, width=widths)
@settings(max_examples=60, deadline=None)
def test_uniform_broadcast_never_conflicts(addrs, width):
    """All lanes at one address is the broadcast case: no conflicts."""
    uniform = np.full(32, int(addrs[0] // width) * width, dtype=np.int64)
    report = bank_conflict_report(uniform, width, np.ones(32, bool))
    assert report.conflicts == 0


@given(addrs=addr_arrays, width=widths)
@settings(max_examples=60, deadline=None)
def test_masked_access_never_worse(addrs, width):
    addrs = (addrs // width) * width
    full = bank_conflict_report(addrs, width, np.ones(32, bool))
    half = np.zeros(32, bool)
    half[::2] = True
    masked = bank_conflict_report(addrs, width, half)
    assert masked.cycles <= full.cycles


@given(addrs=addr_arrays, width=widths)
@settings(max_examples=60, deadline=None)
def test_sector_count_bounds(addrs, width):
    addrs = (addrs // width) * width
    sectors = coalesced_sectors(addrs, width, np.ones(32, bool))
    # At least the footprint of one lane; at most every lane separate.
    assert 1 <= sectors <= 32 * max(1, width // 32 + 1)
    # Perfectly coalesced floor: total bytes / 32.
    assert sectors >= (32 * width) // 32 / 32  # trivially ≥ 1


@given(
    values=st.lists(st.integers(0, 2**32 - 1), min_size=8, max_size=8),
    offset_words=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_global_memory_read_back(values, offset_words):
    g = GlobalMemory(1 << 16)
    base = g.alloc(8192)
    addr = base + 4 * offset_words
    if addr + 32 > (1 << 16):
        return
    arr = np.array(values, dtype=np.uint32)
    g.write_array(addr, arr)
    np.testing.assert_array_equal(g.read_array(addr, (8,), np.uint32), arr)


def test_warp_rw_symmetry():
    g = GlobalMemory(1 << 16)
    base = g.alloc(4096)
    rng = np.random.default_rng(0)
    addrs = base + 16 * rng.permutation(32).astype(np.int64)
    vals = rng.integers(0, 2**32, size=(32, 4), dtype=np.uint64).astype(np.uint32)
    mask = rng.random(32) > 0.3
    g.store_warp(addrs, vals, 16, mask)
    out = g.load_warp(addrs, 16, mask)
    np.testing.assert_array_equal(out[mask], vals[mask])
    assert (out[~mask] == 0).all()
