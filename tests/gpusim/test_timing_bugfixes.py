"""Regression tests for three cycle-accounting bugs found while
vectorizing the hot loop.

Each test encodes the *fixed* behavior and fails on the pre-fix code:

* **yield double-charge** — a yield-requested warp switch used to cost
  two cycles (the ``charged`` bubble *and* an extra issue penalty); the
  §5.1.4 cost is exactly one bubble.
* **first-lane L2 classification** — a warp access straddling the
  L2-resident working set used to charge every sector to whichever side
  the first active lane lived on; sectors are classified individually.
* **barrier deadlock on early exit** — a block whose warp ``EXIT``ed
  before its peers reached ``BAR.SYNC`` used to hang until MAX_CYCLES;
  Volta arrival semantics release the barrier when the straggler exits.
"""

import numpy as np
import pytest

from repro.gpusim import (
    ExecutionContext,
    GlobalMemory,
    SharedMemory,
    V100,
    WarpState,
    simulate_resident_blocks,
)
from repro.gpusim.engine import execute
from repro.gpusim.sm import BlockSpec, SMSimulator
from repro.sass import assemble, parse_line


def _run(src, threads=32, device=V100, gmem=None, **assemble_kwargs):
    kernel = assemble(src, **assemble_kwargs)
    gmem = gmem or GlobalMemory(1 << 16)
    res = simulate_resident_blocks(
        kernel, device, params={}, gmem=gmem, threads_per_block=threads,
        num_blocks=1,
    )
    return res.counters


# ---------------------------------------------------------------------------
# Bug A: yield-switch penalty double-charged
# ---------------------------------------------------------------------------

def test_yield_switch_costs_exactly_one_bubble():
    """§5.1.4: a yield-requested switch 'takes one more clock cycle' —
    one, not two.  The pre-fix loop paid the ``charged`` bubble and then
    added a second cycle at issue time."""
    base = _run(
        "MOV R0, 0x1;\n"
        "MOV R1, 0x1;\n"
        "MOV R2, 0x1;\n"
        "EXIT;\n"
    )
    yielded = _run(
        "MOV R0, 0x1;\n"
        "[B------:R-:W-:Y:S01] MOV R1, 0x1;\n"
        "MOV R2, 0x1;\n"
        "EXIT;\n"
    )
    assert yielded.warp_switches == 1
    assert yielded.switch_penalty_cycles == 1
    # The switch-back costs the one bubble only (pre-fix: 2 cycles).
    assert yielded.cycles - base.cycles == 1


def test_yield_every_instruction_costs_one_cycle_each():
    """N yields ⇒ exactly N extra cycles, not 2N."""
    n = 8
    plain = "\n".join(f"MOV R{i}, 0x1;" for i in range(n)) + "\nEXIT;\n"
    flagged = (
        "\n".join(f"[B------:R-:W-:Y:S01] MOV R{i}, 0x1;" for i in range(n))
        + "\nEXIT;\n"
    )
    base = _run(plain)
    yielded = _run(flagged)
    assert yielded.warp_switches == n
    assert yielded.cycles - base.cycles == n


# ---------------------------------------------------------------------------
# Bug B: L2 residency decided by the first active lane only
# ---------------------------------------------------------------------------

def _straddling_warp(first_lane_resident: bool):
    """A warp whose 32 4-byte lanes cover 4 sectors: 2 L2-resident and
    2 streaming, ordered so the first active lane lands on either side."""
    gmem = GlobalMemory(1 << 16)
    if first_lane_resident:
        resident = gmem.alloc(1024, l2_resident=True)
        start = resident + 1024 - 64  # lanes 0..15 resident, 16..31 not
    else:
        gmem.alloc(1024)  # streaming region first
        resident = gmem.alloc(1024, l2_resident=True)
        start = resident - 64  # lanes 0..15 streaming, 16..31 resident
    warp = WarpState(warp_id=0, block=0)
    warp.regs[2] = np.uint32(start) + 4 * np.arange(32, dtype=np.uint32)
    warp.regs[3][:] = 0
    ctx = ExecutionContext(
        gmem, SharedMemory(16), np.zeros(4096, np.uint8), 0, V100
    )
    return warp, ctx


@pytest.mark.parametrize("first_lane_resident", [True, False])
def test_straddling_warp_splits_sectors(first_lane_resident):
    """Each 32-byte sector charges the bucket it actually lives in,
    regardless of where the first active lane points (the pre-fix code
    charged all 4 sectors to the first lane's side)."""
    warp, ctx = _straddling_warp(first_lane_resident)
    r = execute(parse_line("LDG.E R4, [R2];"), warp, ctx)
    assert r.dram_sectors == 2
    assert r.l2_sectors == 2
    # Any DRAM sector makes the whole access an L2 miss.
    assert r.variable_latency == V100.lat_gmem_l2_miss


def test_fully_resident_warp_is_all_l2():
    gmem = GlobalMemory(1 << 16)
    resident = gmem.alloc(1024, l2_resident=True)
    warp = WarpState(warp_id=0, block=0)
    warp.regs[2] = np.uint32(resident) + 4 * np.arange(32, dtype=np.uint32)
    warp.regs[3][:] = 0
    ctx = ExecutionContext(
        gmem, SharedMemory(16), np.zeros(4096, np.uint8), 0, V100
    )
    r = execute(parse_line("LDG.E R4, [R2];"), warp, ctx)
    assert r.dram_sectors == 0 and r.l2_sectors == 4
    assert r.variable_latency == V100.lat_gmem_l2_hit


def test_classify_sectors_counts_each_side():
    gmem = GlobalMemory(1 << 16)
    resident = gmem.alloc(256, l2_resident=True)
    addrs = np.uint32(resident - 32) + 32 * np.arange(32, dtype=np.uint32)
    dram, l2 = gmem.classify_sectors(addrs, 4, np.ones(32, bool))
    # Sectors before/after the 256-byte region stream; 8 sectors hit L2.
    assert l2 == 8
    assert dram == 24


# ---------------------------------------------------------------------------
# Bug C: early EXIT deadlocks a block at BAR.SYNC
# ---------------------------------------------------------------------------

def _run_blocks(src, num_warps, max_cycles=50_000):
    import repro.gpusim.sm as sm_mod

    kernel = assemble(src, auto_schedule=True)
    gmem = GlobalMemory(1 << 12)
    sim = SMSimulator(V100, kernel.instructions, gmem)
    old = sm_mod.MAX_CYCLES
    sm_mod.MAX_CYCLES = max_cycles
    try:
        return sim.run([BlockSpec(0, num_warps, np.zeros(4096, np.uint8), 1024)])
    finally:
        sm_mod.MAX_CYCLES = old


def test_exit_before_bar_releases_barrier():
    """A warp exiting before its peers' BAR.SYNC must not count toward
    the barrier (pre-fix: the block spins until MAX_CYCLES)."""
    counters = _run_blocks(
        "S2R R0, SR_TID.X;\n"
        "ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;\n"
        "@!P0 EXIT;\n"  # warp 1 exits; warp 0 proceeds to the barrier
        "BAR.SYNC;\n"
        "EXIT;\n",
        num_warps=2,
    )
    assert counters.cycles < 100


def test_last_straggler_exit_releases_waiting_warps():
    """Warps already parked at the barrier are released the cycle the
    last non-arrived warp exits."""
    counters = _run_blocks(
        "S2R R0, SR_TID.X;\n"
        "ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;\n"
        "@P0 BRA WAIT;\n"
        # warp 1: dawdle ~45 cycles, then exit without ever reaching BAR
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "EXIT;\n"
        "WAIT:\n"
        "BAR.SYNC;\n"
        "EXIT;\n",
        num_warps=2,
    )
    assert counters.cycles < 200


def test_barrier_still_synchronizes_live_warps():
    """The fix must not weaken a real barrier: all live warps still wait
    for the slowest arrival."""
    counters = _run_blocks(
        "S2R R0, SR_TID.X;\n"
        "ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;\n"
        "@P0 BRA WAIT;\n"
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "[B------:R-:W-:-:S15] MOV R1, 0x1;\n"
        "WAIT:\n"
        "BAR.SYNC;\n"
        "EXIT;\n",
        num_warps=2,
    )
    # Warp 0 reaches WAIT after ~4 issues but must wait for warp 1's
    # three 15-cycle stalls before the barrier opens.
    assert counters.cycles > 45
    assert counters.barrier_wait_cycles > 0
