"""Profile-report rendering."""

from repro.gpusim import Counters, ProfileReport, V100, profile_report


def _counters():
    return Counters(
        cycles=1000,
        instructions=2400,
        ffma_instrs=1600,
        fp32_instrs=1700,
        fma_pipe_busy=3400,
        mio_pipe_busy=300,
        lsu_pipe_busy=120,
        dram_sectors=64,
        l2_sectors=32,
        smem_conflict_cycles=5,
        reg_bank_conflicts=2,
        warp_switches=7,
        switch_penalty_cycles=7,
        issue_idle_cycles=400,
    )


def test_report_structure():
    report = profile_report(_counters(), V100, title="demo")
    assert isinstance(report, ProfileReport)
    titles = [s.title for s in report.sections]
    assert titles == [
        "GPU Speed Of Light",
        "Compute Workload",
        "Scheduler Statistics",
        "Memory Workload",
    ]


def test_sol_value():
    text = profile_report(_counters(), V100).render()
    # fma busy 3400 over 1000 cycles × 4 schedulers = 85%.
    assert "SM [%]" in text and "85.0%" in text


def test_traffic_rows():
    text = profile_report(_counters(), V100).render()
    assert "DRAM sectors" in text and "64" in text
    assert "Shared-memory conflict cycles" in text


def test_zero_cycles_safe():
    text = profile_report(Counters(), V100).render()
    assert "SM [%]" in text  # no division errors


def test_real_run_reports_clean_kernel():
    """A real main-loop run shows zero conflicts in the report."""
    from repro.common import ConvProblem
    from repro.gpusim import GlobalMemory, RTX2070, simulate_resident_blocks
    from repro.kernels import WinogradF22Kernel

    prob = ConvProblem(n=32, c=8, h=8, w=8, k=64)
    kernel = WinogradF22Kernel(prob).build(main_loop_only=True, iters=1)
    gmem = GlobalMemory()
    params = {
        "in_ptr": gmem.alloc(4 * (prob.c + 8) * prob.h * prob.w * prob.n),
        "fil_ptr": gmem.alloc(4 * (prob.c + 8) * 16 * prob.k, l2_resident=True),
        "out_ptr": gmem.alloc(4 * prob.k * prob.out_h * prob.out_w * prob.n),
    }
    res = simulate_resident_blocks(kernel, RTX2070, params=params, gmem=gmem,
                                   threads_per_block=256)
    text = profile_report(res.counters, RTX2070).render()
    assert "Register bank conflicts   0" in text.replace("  ", " ").replace(
        "   ", " "
    ) or "Register bank conflicts" in text
    assert res.counters.reg_bank_conflicts == 0
    assert res.counters.smem_conflict_cycles == 0
