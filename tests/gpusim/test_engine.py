"""Per-instruction functional semantics of the execution engine."""

import struct

import numpy as np
import pytest

from repro.common import SimulatorError
from repro.gpusim import ExecutionContext, GlobalMemory, SharedMemory, V100, WarpState
from repro.gpusim.engine import execute
from repro.sass import parse_line


@pytest.fixture
def ctx():
    return ExecutionContext(
        GlobalMemory(1 << 16), SharedMemory(8192), np.zeros(4096, np.uint8),
        block_idx=3, device=V100, block_idx_y=5,
    )


@pytest.fixture
def warp():
    return WarpState(warp_id=2, block=0)


def _f32(warp, idx, values):
    warp.regs[idx] = np.frombuffer(
        np.asarray(values, np.float32).tobytes(), np.uint32
    )


def _run(warp, ctx, text):
    return execute(parse_line(text), warp, ctx)


def test_ffma(warp, ctx):
    _f32(warp, 1, np.full(32, 2.0))
    _f32(warp, 2, np.full(32, 3.0))
    _f32(warp, 3, np.full(32, 0.5))
    r = _run(warp, ctx, "FFMA R0, R1, R2, R3;")
    assert r.pipe == "fma" and r.pipe_cycles == 2
    np.testing.assert_array_equal(warp.read_reg_f32(0), np.full(32, 6.5))


def test_fadd_negated(warp, ctx):
    _f32(warp, 1, np.full(32, 5.0))
    _f32(warp, 2, np.full(32, 2.0))
    _run(warp, ctx, "FADD R0, R1, -R2;")
    np.testing.assert_array_equal(warp.read_reg_f32(0), np.full(32, 3.0))


def test_ffma_immediate_float(warp, ctx):
    _f32(warp, 1, np.full(32, 2.0))
    _run(warp, ctx, "FFMA R0, R1, 1.5, RZ;")
    np.testing.assert_array_equal(warp.read_reg_f32(0), np.full(32, 3.0))


def test_predicated_write_masks_lanes(warp, ctx):
    warp.preds[1, :16] = True
    _f32(warp, 1, np.full(32, 1.0))
    _run(warp, ctx, "@P1 FADD R0, R1, R1;")
    out = warp.read_reg_f32(0)
    assert (out[:16] == 2.0).all() and (out[16:] == 0.0).all()


def test_rz_reads_zero_and_ignores_writes(warp, ctx):
    _f32(warp, 1, np.full(32, 9.0))
    _run(warp, ctx, "FADD RZ, R1, R1;")
    assert (warp.read_reg(255) == 0).all()


def test_iadd3_wraps(warp, ctx):
    warp.regs[1][:] = 0xFFFFFFFF
    _run(warp, ctx, "IADD3 R0, R1, 0x2, RZ;")
    assert (warp.read_reg(0) == 1).all()


def test_imad(warp, ctx):
    warp.regs[1][:] = 7
    warp.regs[2][:] = 3
    _run(warp, ctx, "IMAD R0, R1, 0x6, R2;")
    assert (warp.read_reg(0) == 45).all()


def test_imad_wide_unsigned(warp, ctx):
    warp.regs[1][:] = 0x80000000
    _run(warp, ctx, "IMAD.WIDE.U32 R4, R1, 0x4, RZ;")
    assert (warp.read_reg(4) == 0).all()
    assert (warp.read_reg(5) == 2).all()


def test_imad_wide_signed_negative(warp, ctx):
    warp.regs[1][:] = np.uint32(0xFFFFFFFF)  # −1
    _run(warp, ctx, "IMAD.WIDE R4, R1, 0x4, RZ;")
    assert (warp.read_reg(4) == 0xFFFFFFFC).all()
    assert (warp.read_reg(5) == 0xFFFFFFFF).all()


def test_imad_wide_adds_64bit_base(warp, ctx):
    warp.regs[2][:] = 0x10  # lo
    warp.regs[3][:] = 0x1  # hi
    warp.regs[1][:] = 1
    _run(warp, ctx, "IMAD.WIDE.U32 R4, R1, 0x8, R2;")
    assert (warp.read_reg(4) == 0x18).all()
    assert (warp.read_reg(5) == 1).all()


def test_magic_division_idiom(warp, ctx):
    """The IMAD.WIDE.U32 + high-word idiom divides by a constant."""
    d = 28
    magic = -(-(1 << 32) // d)
    warp.regs[1] = np.arange(32, dtype=np.uint32) * 97
    _run(warp, ctx, f"IMAD.WIDE.U32 R4, R1, {magic:#x}, RZ;")
    np.testing.assert_array_equal(
        warp.read_reg(5), (np.arange(32) * 97 // d).astype(np.uint32)
    )


def test_lop3_variants(warp, ctx):
    warp.regs[1][:] = 0b1100
    warp.regs[2][:] = 0b1010
    _run(warp, ctx, "LOP3.AND R0, R1, R2, RZ;")
    assert (warp.read_reg(0) == 0b1000).all()
    _run(warp, ctx, "LOP3.OR R0, R1, R2, RZ;")
    assert (warp.read_reg(0) == 0b1110).all()
    _run(warp, ctx, "LOP3.XOR R0, R1, R2, RZ;")
    assert (warp.read_reg(0) == 0b0110).all()


def test_shf_shifts(warp, ctx):
    warp.regs[1][:] = 0x80
    _run(warp, ctx, "SHF.L.U32 R0, R1, 0x4, RZ;")
    assert (warp.read_reg(0) == 0x800).all()
    _run(warp, ctx, "SHF.R.U32 R0, R1, 0x3, RZ;")
    assert (warp.read_reg(0) == 0x10).all()


def test_shf_funnel(warp, ctx):
    warp.regs[1][:] = 0x80000000
    warp.regs[2][:] = 0x1
    _run(warp, ctx, "SHF.R.U32 R0, R1, 0x4, R2;")
    assert (warp.read_reg(0) == 0x18000000).all()


def test_mov_and_cs2r(warp, ctx):
    _run(warp, ctx, "MOV R0, 0x2a;")
    assert (warp.read_reg(0) == 42).all()
    warp.regs[3][:] = 5
    _run(warp, ctx, "CS2R.32 R3, ;".replace(", ;", ";"))
    assert (warp.read_reg(3) == 0).all()


def test_popc(warp, ctx):
    warp.regs[1][:] = 0b1011001
    _run(warp, ctx, "POPC R0, R1;")
    assert (warp.read_reg(0) == 4).all()


def test_mufu_rcp(warp, ctx):
    _f32(warp, 1, np.full(32, 4.0))
    r = _run(warp, ctx, "MUFU.RCP R0, R1;")
    assert r.pipe == "mio" and r.variable_latency > 0
    np.testing.assert_allclose(warp.read_reg_f32(0), 0.25)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
def test_isetp_signed_vs_unsigned(warp, ctx):
    warp.regs[1][:] = np.uint32(0xFFFFFFFF)  # −1 signed, huge unsigned
    _run(warp, ctx, "ISETP.LT.AND P0, PT, R1, 0x5, PT;")
    assert warp.preds[0].all()  # signed: −1 < 5
    _run(warp, ctx, "ISETP.LT.U32.AND P1, PT, R1, 0x5, PT;")
    assert not warp.preds[1].any()  # unsigned: 2^32−1 > 5


def test_isetp_bool_combine(warp, ctx):
    warp.preds[2, :] = False
    warp.regs[1][:] = 1
    _run(warp, ctx, "ISETP.EQ.AND P0, PT, R1, 0x1, P2;")
    assert not warp.preds[0].any()
    _run(warp, ctx, "ISETP.EQ.OR P0, PT, R1, 0x1, P2;")
    assert warp.preds[0].all()
    _run(warp, ctx, "ISETP.EQ.AND P0, PT, R1, 0x1, !P2;")
    assert warp.preds[0].all()


def test_p2r_r2p_roundtrip(warp, ctx):
    warp.preds[0, :] = True
    warp.preds[2, ::2] = True
    _run(warp, ctx, "P2R R5, 0x7f;")
    expect = 1 | (warp.preds[2].astype(np.uint32) << 2)
    np.testing.assert_array_equal(warp.read_reg(5), expect)
    # Clear and restore via R2P.
    warp.preds[:7] = False
    _run(warp, ctx, "R2P R5, 0x7f;")
    assert warp.preds[0].all()
    np.testing.assert_array_equal(warp.preds[2], expect >= 5)


def test_r2p_respects_mask(warp, ctx):
    warp.regs[5][:] = 0b111
    warp.preds[2, :] = False
    _run(warp, ctx, "R2P R5, 0x3;")  # only P0, P1
    assert warp.preds[0].all() and warp.preds[1].all()
    assert not warp.preds[2].any()


def test_pt_never_written(warp, ctx):
    warp.regs[5][:] = 0xFF
    _run(warp, ctx, "R2P R5, 0x7f;")
    assert warp.preds[7].all()


# ---------------------------------------------------------------------------
# Special registers and memory
# ---------------------------------------------------------------------------
def test_s2r_values(warp, ctx):
    _run(warp, ctx, "S2R R0, SR_TID.X;")
    np.testing.assert_array_equal(warp.read_reg(0), 64 + np.arange(32))
    _run(warp, ctx, "S2R R1, SR_CTAID.X;")
    assert (warp.read_reg(1) == 3).all()
    _run(warp, ctx, "S2R R2, SR_CTAID.Y;")
    assert (warp.read_reg(2) == 5).all()
    _run(warp, ctx, "S2R R3, SR_LANEID;")
    np.testing.assert_array_equal(warp.read_reg(3), np.arange(32))


def test_ldg_stg_64bit_address(warp, ctx):
    ptr = ctx.gmem.alloc(256)
    ctx.gmem.write_array(ptr, np.arange(64, dtype=np.float32))
    warp.regs[2][:] = np.uint32(ptr)
    warp.regs[3][:] = 0
    warp.regs[2] += 4 * np.arange(32, dtype=np.uint32)
    r = _run(warp, ctx, "LDG.E R0, [R2 + 0x10];")
    assert r.pipe == "lsu" and r.variable_latency > 0
    np.testing.assert_array_equal(warp.read_reg_f32(0), 4.0 + np.arange(32))
    _run(warp, ctx, "STG.E [R2], R0;")
    np.testing.assert_array_equal(
        ctx.gmem.read_array(ptr, (32,)), 4.0 + np.arange(32)
    )


def test_ldg_negative_low_word_base(warp, ctx):
    """A 'negative' low word with an all-ones high word addresses correctly."""
    ptr = ctx.gmem.alloc(256)
    ctx.gmem.write_array(ptr, np.arange(8, dtype=np.float32))
    base = ptr - 64  # may point below the heap start
    warp.regs[2][:] = np.uint32(base & 0xFFFFFFFF)
    warp.regs[3][:] = np.uint32(0)
    _run(warp, ctx, "LDG.E R0, [R2 + 0x40];")
    assert warp.read_reg_f32(0)[0] == 0.0


def test_lds_sts_width_128(warp, ctx):
    ctx.smem.write_array(0, np.arange(256, dtype=np.float32))
    warp.regs[1] = (16 * np.arange(32)).astype(np.uint32)
    r = _run(warp, ctx, "LDS.128 R4, [R1];")
    assert r.pipe == "mio" and r.pipe_cycles == 4  # 4 word transactions
    np.testing.assert_array_equal(warp.read_reg_f32(4), 4.0 * np.arange(32))
    np.testing.assert_array_equal(warp.read_reg_f32(7), 4.0 * np.arange(32) + 3)


def test_sts_predicated(warp, ctx):
    warp.regs[1] = (4 * np.arange(32)).astype(np.uint32)
    warp.regs[8][:] = 0x42
    warp.preds[0, :4] = True
    _run(warp, ctx, "@P0 STS [R1], R8;")
    data = ctx.smem.read_array(0, (32,), np.uint32)
    assert (data[:4] == 0x42).all() and (data[4:] == 0).all()


def test_const_operand_reads_bank(warp, ctx):
    ctx.const_bank[0x160:0x164] = np.frombuffer(
        struct.pack("<I", 1234), np.uint8
    )
    _run(warp, ctx, "MOV R0, c[0x0][0x160];")
    assert (warp.read_reg(0) == 1234).all()


# ---------------------------------------------------------------------------
# Control
# ---------------------------------------------------------------------------
def test_uniform_branch_taken(warp, ctx):
    warp.pc = 10
    instr = parse_line("BRA LOOP;")
    instr.target = -4
    r = execute(instr, warp, ctx)
    assert r.branch_target == 7


def test_predicated_branch_not_taken(warp, ctx):
    instr = parse_line("@P0 BRA X;")
    instr.target = 5
    r = execute(instr, warp, ctx)
    assert r.branch_target is None


def test_divergent_branch_rejected(warp, ctx):
    warp.preds[0, :16] = True
    instr = parse_line("@P0 BRA X;")
    instr.target = 5
    with pytest.raises(SimulatorError):
        execute(instr, warp, ctx)


def test_exit_and_divergent_exit(warp, ctx):
    assert _run(warp, ctx, "EXIT;").exited
    warp.preds[0, :16] = True
    with pytest.raises(SimulatorError):
        _run(warp, ctx, "@P0 EXIT;")
    assert not _run(warp, ctx, "@!PT EXIT;").exited


def test_bar_flag(warp, ctx):
    assert _run(warp, ctx, "BAR.SYNC;").barrier_sync


# ---------------------------------------------------------------------------
# Register bank conflicts + reuse cache (§5.2.2 / footnote 6)
# ---------------------------------------------------------------------------
def test_same_bank_three_sources_conflict(warp, ctx):
    r = _run(warp, ctx, "FFMA R0, R2, R4, R6;")  # all even
    assert r.reg_bank_conflict and r.pipe_cycles == 3


def test_mixed_banks_no_conflict(warp, ctx):
    r = _run(warp, ctx, "FFMA R0, R1, R4, R6;")
    assert not r.reg_bank_conflict and r.pipe_cycles == 2


def test_repeated_register_counts_once(warp, ctx):
    r = _run(warp, ctx, "FFMA R0, R2, R2, R2;")
    assert not r.reg_bank_conflict


def test_reuse_cache_suppresses_conflict(warp, ctx):
    _run(warp, ctx, "FFMA R1, R3, R4.reuse, R5;")  # caches slot 1 = R4
    r = _run(warp, ctx, "FFMA R0, R2, R4, R6;")  # R4 served from cache
    assert not r.reg_bank_conflict


def test_reuse_cache_cleared_between_different_regs(warp, ctx):
    _run(warp, ctx, "FFMA R1, R3, R8.reuse, R5;")
    r = _run(warp, ctx, "FFMA R0, R2, R4, R6;")  # cache holds R8, not R4
    assert r.reg_bank_conflict
