"""The device registry: resolution, validation, and the §7.1 occupancy
differential between the two registered architectures."""

import dataclasses

import pytest

from repro.common.errors import DeviceError
from repro.gpusim.arch import (
    DEVICE_ALIASES,
    DEVICE_ENV_VAR,
    DEVICES,
    LATENCY_BOUNDS,
    RTX2070,
    V100,
    DeviceSpec,
    canonical_device_key,
    device_key,
    register_device,
    resolve_device,
    validate_device,
)
from repro.kernels.winograd_fused import kernel_for_tile
from repro.models.resnet import resnet_layer


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
def test_resolve_by_registry_key_any_case():
    assert resolve_device("V100") is V100
    assert resolve_device("v100") is V100
    assert resolve_device("rtx2070") is RTX2070


def test_resolve_by_full_spec_name_and_alias():
    assert resolve_device("Tesla V100") is V100
    assert resolve_device("volta") is V100
    assert resolve_device("turing") is RTX2070
    assert resolve_device("GeForce RTX 2070") is RTX2070


def test_resolve_spec_passes_through():
    custom = dataclasses.replace(V100, name="custom")
    assert resolve_device(custom) is custom


def test_resolve_none_defaults_to_v100(monkeypatch):
    monkeypatch.delenv(DEVICE_ENV_VAR, raising=False)
    assert resolve_device(None) is V100


def test_resolve_none_honors_environment(monkeypatch):
    monkeypatch.setenv(DEVICE_ENV_VAR, "RTX2070")
    assert resolve_device(None) is RTX2070
    monkeypatch.setenv(DEVICE_ENV_VAR, "volta")
    assert resolve_device(None) is V100


def test_resolve_unknown_name_is_actionable():
    with pytest.raises(DeviceError) as err:
        resolve_device("H100")
    # The error must name what *would* work.
    assert "V100" in str(err.value)
    assert "RTX2070" in str(err.value)


def test_resolve_rejects_non_device_types():
    with pytest.raises(DeviceError):
        resolve_device(42)


def test_canonical_key_round_trips_every_alias():
    for alias, key in DEVICE_ALIASES.items():
        assert canonical_device_key(alias) == key
        assert resolve_device(alias) is DEVICES[key]


def test_device_key_reverse_lookup():
    assert device_key(V100) == "V100"
    assert device_key(RTX2070) == "RTX2070"
    assert device_key(dataclasses.replace(V100, num_sms=81)) is None


# ---------------------------------------------------------------------------
# Validation + registration
# ---------------------------------------------------------------------------
def test_registered_devices_validate():
    for spec in DEVICES.values():
        validate_device(spec)


def test_validate_rejects_nonpositive_structure():
    with pytest.raises(DeviceError, match="num_sms"):
        validate_device(dataclasses.replace(V100, num_sms=0))


def test_validate_rejects_smem_block_over_sm():
    with pytest.raises(DeviceError, match="smem_per_block"):
        validate_device(
            dataclasses.replace(V100, smem_per_block=128 * 1024)
        )


def test_validate_enforces_citadel_latency_windows():
    lo, hi = LATENCY_BOUNDS["volta"]["lat_gmem_l2_hit"]
    validate_device(dataclasses.replace(V100, lat_gmem_l2_hit=lo))
    validate_device(dataclasses.replace(V100, lat_gmem_l2_hit=hi))
    with pytest.raises(DeviceError, match="lat_gmem_l2_hit"):
        validate_device(dataclasses.replace(V100, lat_gmem_l2_hit=hi + 1))
    with pytest.raises(DeviceError, match="lat_gmem_l2_miss"):
        validate_device(dataclasses.replace(RTX2070, lat_gmem_l2_miss=100))


def test_validate_skips_latency_check_for_unknown_arch():
    # A future arch has no published window yet; structure still gates.
    future = dataclasses.replace(V100, arch="hopper", lat_gmem_l2_hit=999)
    validate_device(future)


def test_register_device_validates_and_refuses_redefinition(monkeypatch):
    monkeypatch.setitem(DEVICES, "TEST_DEV", V100)
    del DEVICES["TEST_DEV"]  # monkeypatch restores the dict afterwards

    spec = dataclasses.replace(V100, name="Test Device")
    assert register_device("TEST_DEV", spec) is spec
    assert resolve_device("TEST_DEV") is spec
    # idempotent re-registration of the identical spec is fine
    register_device("TEST_DEV", spec)
    with pytest.raises(DeviceError, match="already registered"):
        register_device("TEST_DEV", dataclasses.replace(spec, num_sms=12))
    with pytest.raises(DeviceError, match="lat_gmem_l2_hit"):
        register_device(
            "BAD_DEV", dataclasses.replace(V100, lat_gmem_l2_hit=999)
        )
    assert "BAD_DEV" not in DEVICES


def test_to_dict_fingerprints_every_latency():
    payload = V100.to_dict()
    assert payload["name"] == "Tesla V100"
    assert payload["lat_gmem_l2_hit"] == 193
    assert payload["peak_fp32_tflops"] == pytest.approx(15.667, abs=1e-3)
    # editing any constant must change the fingerprint
    assert dataclasses.replace(V100, num_sms=81).to_dict() != payload


# ---------------------------------------------------------------------------
# The §7.1 occupancy differential between the two architectures
# ---------------------------------------------------------------------------
def test_smem_occupancy_differential_at_f22_footprint():
    """§7.1's argument: a 48 KB block double-buffers on Volta's 96 KB
    SMs but not on Turing's 64 KB.  Shown at the f22 kernel's actual
    shared-memory footprint with a register budget low enough that smem
    is the binding resource (the figure the paper draws)."""
    prob = resnet_layer("Conv3", n=32)
    gen = kernel_for_tile(prob, "f22")
    assert gen.launch_smem_bytes == 48 * 1024
    assert V100.occupancy(256, 128, gen.launch_smem_bytes) == 2
    assert RTX2070.occupancy(256, 128, gen.launch_smem_bytes) == 1


def test_shipped_kernels_are_register_limited_on_both_devices():
    """As generated, both families spend enough registers (f22: 253,
    f44: 212 per thread) that the register file — not shared memory —
    caps residency at one block/SM on *both* architectures; the
    cross-device differential is the remaining smem headroom."""
    prob = resnet_layer("Conv3", n=32)
    for family in ("f22", "f44"):
        gen = kernel_for_tile(prob, family)
        assert V100.occupancy(256, gen.num_regs, gen.launch_smem_bytes) == 1
        assert RTX2070.occupancy(256, gen.num_regs, gen.launch_smem_bytes) == 1
        assert (V100.smem_per_sm - gen.launch_smem_bytes) > (
            RTX2070.smem_per_sm - gen.launch_smem_bytes
        )


def test_f44_footprint_fits_exactly_once_by_smem_on_turing():
    """The 54 KB f44 block fits Turing's 64 KB SM once even with smem
    as the binding resource — F(4×4) never double-buffers blocks on
    either device, unlike f22 on Volta."""
    prob = resnet_layer("Conv3", n=32)
    gen = kernel_for_tile(prob, "f44")
    assert gen.launch_smem_bytes == 54 * 1024
    assert V100.occupancy(256, 128, gen.launch_smem_bytes) == 1
    assert RTX2070.occupancy(256, 128, gen.launch_smem_bytes) == 1
