"""Focused timing-semantics tests for the SM scheduler."""

import numpy as np
import pytest

from repro.common import SimDeadlock
from repro.gpusim import GlobalMemory, V100, simulate_resident_blocks
from repro.gpusim.sm import BlockSpec, SMSimulator
from repro.sass import assemble


def _run(src, threads=32, device=V100, **assemble_kwargs):
    kernel = assemble(src, **assemble_kwargs)
    gmem = GlobalMemory(1 << 16)
    res = simulate_resident_blocks(
        kernel, device, params={}, gmem=gmem, threads_per_block=threads,
        num_blocks=1,  # isolate one block so per-warp timing is visible
    )
    return res.counters


def test_stall_counts_delay_issue():
    """A stall of S holds the warp's next issue back to cycle S."""
    short = _run("MOV R0, 0x1;\nMOV R1, 0x1;\nEXIT;\n")
    long = _run(
        "[B------:R-:W-:-:S09] MOV R0, 0x1;\nMOV R1, 0x1;\nEXIT;\n"
    )
    # Baseline: issue at 0, pipe-limited second MOV at 2 → EXIT at 3.
    # Stalled: second MOV at 9 → EXIT at 10: 7 extra cycles.
    assert long.cycles - short.cycles == 7


def test_fma_pipe_limits_one_warp_to_half_rate():
    """A lone warp's FFMA stream issues at most every 2 cycles."""
    body = "\n".join(f"FFMA R{i % 16}, R20, R21, R{i % 16};" for i in range(64))
    c = _run(body + "\nEXIT;\n")
    assert c.cycles >= 2 * 64


def test_two_warps_share_alu_and_fma_pipes():
    """INT work from warp B fills the FFMA dead cycles of warp A."""
    body = []
    for i in range(32):
        body.append(f"FFMA R{i % 8}, R20, R21, R{i % 8};")
        body.append(f"IADD3 R{8 + i % 8}, R22, R23, RZ;")
    src = "\n".join(body) + "\nEXIT;\n"
    one = _run(src, threads=32)
    # Same per-warp program with 2 warps: pipes overlap, far less than 2×.
    two = _run(src, threads=64)
    assert two.cycles < 1.5 * one.cycles


def test_scoreboard_blocks_until_completion():
    """A consumer waiting on an LDG barrier stalls ~ the memory latency."""
    src = (
        "MOV R2, 0x400;\nMOV R3, 0x0;\n"
        "[B------:R-:W0:-:S01] LDG.E R4, [R2];\n"
        "[B0-----:R-:W-:-:S01] IADD3 R5, R4, 0x1, RZ;\nEXIT;\n"
    )
    c = _run(src)
    assert c.cycles > V100.lat_gmem_l2_miss


def test_independent_work_hides_memory_latency():
    """FFMAs between the LDG and its consumer absorb the wait."""
    filler = "\n".join(
        f"[B------:R-:W-:-:S01] FFMA R{8 + i % 8}, R20, R21, R{8 + i % 8};"
        for i in range(400)
    )
    src = (
        "MOV R2, 0x400;\nMOV R3, 0x0;\n"
        "[B------:R-:W0:-:S01] LDG.E R4, [R2];\n"
        + filler
        + "\n[B0-----:R-:W-:-:S01] IADD3 R5, R4, 0x1, RZ;\nEXIT;\n"
    )
    with_filler = _run(src)
    # 400 FFMAs × 2 cycles dominate; the load is fully hidden.
    assert with_filler.cycles < 2 * 400 + 150


def test_deadlock_detected():
    """A warp spinning forever must raise SimDeadlock, not hang.

    (Exiting before a peer's BAR.SYNC no longer deadlocks — Volta
    arrival semantics release the barrier — so the livelock here is an
    unconditional infinite loop in one warp.)
    """
    import repro.gpusim.sm as sm_mod

    src = (
        "S2R R0, SR_TID.X;\n"
        "ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;\n"
        "@!P0 EXIT;\n"  # warp 1 exits; warp 0 spins forever
        "SPIN:\n"
        "[B------:R-:W-:-:S02] IADD3 R1, R1, 0x1, RZ;\n"
        "BRA SPIN;\n"
        "EXIT;\n"
    )
    kernel = assemble(src, auto_schedule=True)
    gmem = GlobalMemory(1 << 12)
    sim = SMSimulator(V100, kernel.instructions, gmem)
    old = sm_mod.MAX_CYCLES
    sm_mod.MAX_CYCLES = 20_000
    try:
        with pytest.raises(SimDeadlock):
            sim.run([BlockSpec(0, 2, np.zeros(4096, np.uint8), 1024)])
    finally:
        sm_mod.MAX_CYCLES = old


def test_dram_bandwidth_throttles_streaming_loads():
    """Loads beyond the fair-share DRAM rate finish later than the base
    latency alone would predict."""
    def kernel(n_loads):
        lines = ["MOV R2, 0x400;", "MOV R3, 0x0;"]
        for i in range(n_loads):
            lines.append(
                f"[B------:R-:W0:-:S01] LDG.E.128 R{4 * (i % 40) + 8}, "
                f"[R2 + {(i * 16) % 512:#x}];"
            )
        lines.append("[B0-----:R-:W-:-:S01] EXIT;")
        return "\n".join(lines)

    few = _run(kernel(4), threads=256)
    many = _run(kernel(60), threads=256)
    assert many.cycles > few.cycles + 100
    assert many.dram_sectors > few.dram_sectors


def test_l2_resident_loads_bypass_dram_bucket():
    gmem = GlobalMemory(1 << 16)
    resident = gmem.alloc(1024, l2_resident=True)
    streaming = gmem.alloc(1024)

    def run(ptr):
        lines = [f"MOV R2, {ptr:#x};", "MOV R3, 0x0;"]
        for i in range(32):
            lines.append(
                f"[B------:R-:W0:-:S01] LDG.E R{8 + i % 32}, [R2 + {4 * i:#x}];"
            )
        lines.append("[B0-----:R-:W-:-:S01] EXIT;")
        kernel = assemble("\n".join(lines))
        return simulate_resident_blocks(
            kernel, V100, params={}, gmem=gmem, threads_per_block=256
        ).counters

    c_res = run(resident)
    c_str = run(streaming)
    assert c_res.l2_sectors > 0 and c_res.dram_sectors == 0
    assert c_str.dram_sectors > 0 and c_str.l2_sectors == 0
