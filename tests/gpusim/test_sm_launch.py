"""SM scheduler behavior and the launch API."""

import numpy as np
import pytest

from repro.common import SimLaunchError
from repro.gpusim import (
    GlobalMemory,
    RTX2070,
    V100,
    build_const_bank,
    estimate_grid_time,
    run_grid,
    simulate_resident_blocks,
)
from repro.sass import assemble


def _ffma_loop(yield_every=None, body=128, iters=8, pairs_mixed=True):
    lines = [".kernel loop", ".registers 64", ".param 4 iters",
             "MOV R60, param:iters;", "LOOP:"]
    for i in range(body):
        d = i % 32
        a = 33 + 2 * (i % 8) if pairs_mixed else 32 + 2 * (i % 8)
        line = f"FFMA R{d}, R{a}, R{48 + 2 * (i % 8)}, R{d};"
        if yield_every and (i + 1) % yield_every == 0:
            line = "[B------:R-:W-:Y:S01] " + line
        lines.append(line)
    lines += [
        "IADD3 R60, R60, -1, RZ;",
        "ISETP.NE.AND P1, PT, R60, RZ, PT;",
        "[B------:R-:W-:-:S05] @P1 BRA LOOP;",
        "EXIT;",
    ]
    return assemble("\n".join(lines))


def _run(kernel, device=V100, iters=8, threads=256, blocks=1):
    gmem = GlobalMemory(1 << 20)
    res = simulate_resident_blocks(
        kernel, device, params={"iters": iters}, gmem=gmem,
        threads_per_block=threads, num_blocks=blocks,
    )
    return res.counters


def test_ffma_throughput_near_peak():
    c = _run(_ffma_loop())
    assert c.sol() > 0.97
    # 8 warps × 8 iters × 128 FFMAs.
    assert c.ffma_instrs == 8 * 8 * 128


def test_flops_accounting():
    c = _run(_ffma_loop(), iters=2)
    assert c.flops == 2 * 32 * c.ffma_instrs


def test_register_bank_conflicts_slow_the_pipe():
    good = _run(_ffma_loop(pairs_mixed=True))
    bad = _run(_ffma_loop(pairs_mixed=False))
    assert bad.reg_bank_conflicts > 0 and good.reg_bank_conflicts == 0
    assert bad.cycles > good.cycles * 1.2


def test_yield_flag_costs_cycles():
    natural = _run(_ffma_loop(yield_every=None))
    yielding = _run(_ffma_loop(yield_every=8))
    assert yielding.switch_penalty_cycles > 0
    assert natural.switch_penalty_cycles == 0
    assert yielding.cycles >= natural.cycles


def test_single_warp_cannot_reach_peak():
    """One warp alone: FFMA every 2 cycles max → SOL capped at ~0.25/sched."""
    c = _run(_ffma_loop(), threads=32)
    assert c.sol() < 0.30


def test_barrier_synchronizes_block():
    """Warp 0 writes smem before the barrier; all warps read it after."""
    src = """
.kernel barrier_demo
.registers 16
.smem 1024
.param 8 out_ptr
S2R R0, SR_TID.X;
SHF.L.U32 R1, R0, 0x2, RZ;
ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;
MOV R4, 0x2a;
@P0 STS [R1], R4;
BAR.SYNC;
LDS R5, [R1 + 0x0];
MOV R2, param:out_ptr;
MOV R3, c[0x0][0x164];
IADD3 R2, R2, R1, RZ;
STG.E [R2], R5;
EXIT;
"""
    kernel = assemble(src, auto_schedule=True, strict=True)
    # Only threads < 32 wrote; but all 64 threads read within [0,256B)?
    # Threads 32-63 read offsets 128..255 which were never written → 0.
    gmem = GlobalMemory(1 << 20)
    out = gmem.alloc(1024)
    run_grid(kernel, V100, grid=1, threads_per_block=64,
             params={"out_ptr": out}, gmem=gmem)
    vals = gmem.read_array(out, (64,), np.uint32)
    assert (vals[:32] == 0x2A).all()
    assert (vals[32:] == 0).all()


def test_multi_block_isolation():
    """Two resident blocks have independent shared memory and barriers."""
    src = """
.kernel two_blocks
.registers 16
.smem 1024
.param 8 out_ptr
S2R R0, SR_TID.X;
S2R R6, SR_CTAID.X;
SHF.L.U32 R1, R0, 0x2, RZ;
IADD3 R4, R6, 0x1, RZ;
STS [R1], R4;
BAR.SYNC;
LDS R5, [R1];
MOV R2, param:out_ptr;
MOV R3, c[0x0][0x164];
SHF.L.U32 R7, R6, 0x7, RZ;
IADD3 R2, R2, R7, RZ;
IADD3 R2, R2, R1, RZ;
STG.E [R2], R5;
EXIT;
"""
    kernel = assemble(src, auto_schedule=True, strict=True)
    gmem = GlobalMemory(1 << 20)
    out = gmem.alloc(4096)
    run_grid(kernel, V100, grid=2, threads_per_block=32,
             params={"out_ptr": out}, gmem=gmem, concurrent=2)
    vals = gmem.read_array(out, (64,), np.uint32)
    assert (vals[:32] == 1).all() and (vals[32:] == 2).all()


def test_grid_tuple_exposes_ctaid_y():
    src = """
.kernel grid2d
.registers 16
.param 8 out_ptr
S2R R0, SR_CTAID.X;
S2R R1, SR_CTAID.Y;
IMAD R4, R1, 0x3, R0;
SHF.L.U32 R5, R4, 0x2, RZ;
MOV R2, param:out_ptr;
MOV R3, c[0x0][0x164];
IADD3 R2, R2, R5, RZ;
STG.E [R2], R4;
EXIT;
"""
    kernel = assemble(src, auto_schedule=True, strict=True)
    gmem = GlobalMemory(1 << 20)
    out = gmem.alloc(256)
    run_grid(kernel, V100, grid=(3, 2), threads_per_block=32,
             params={"out_ptr": out}, gmem=gmem)
    vals = gmem.read_array(out, (6,), np.uint32)
    np.testing.assert_array_equal(vals, np.arange(6))


def test_mshr_limit_throttles_ldg_bursts():
    """A burst of loads beyond the LSU queue depth stalls issue."""
    def burst_kernel():
        lines = [".kernel burst", ".registers 96", ".param 8 ptr",
                 "MOV R2, param:ptr;", "MOV R3, c[0x0][0x164];"]
        for i in range(64):
            lines.append(
                f"[B------:R-:W0:-:S01] LDG.E R{8 + (i % 64)}, [R2 + {i * 4:#x}];"
            )
        lines += ["[B0-----:R-:W-:-:S01] EXIT;"]
        return assemble("\n".join(lines))

    kernel = burst_kernel()
    gmem = GlobalMemory(1 << 20)
    ptr = gmem.alloc(4096)
    import dataclasses

    deep = dataclasses.replace(V100, lsu_queue_depth=1024)
    shallow = dataclasses.replace(V100, lsu_queue_depth=8)
    c_deep = simulate_resident_blocks(
        kernel, deep, params={"ptr": ptr}, gmem=gmem, threads_per_block=256
    ).counters
    c_shallow = simulate_resident_blocks(
        kernel, shallow, params={"ptr": ptr}, gmem=gmem, threads_per_block=256
    ).counters
    assert c_shallow.cycles > c_deep.cycles


# ---------------------------------------------------------------------------
# Launch plumbing
# ---------------------------------------------------------------------------
def _demo():
    return assemble(".kernel k\n.param 8 p\n.param 4 n\nMOV R0, param:n;\nEXIT;\n")


def test_build_const_bank_layout():
    bank = build_const_bank(_demo().meta, {"p": 0x1234, "n": 7})
    assert bank[0x160:0x164].view(np.uint32)[0] == 0x1234
    assert bank[0x168:0x16C].view(np.uint32)[0] == 7


def test_unknown_param_rejected():
    with pytest.raises(SimLaunchError):
        build_const_bank(_demo().meta, {"nope": 1})


def test_threads_must_be_warp_multiple():
    with pytest.raises(SimLaunchError):
        run_grid(_demo(), V100, 1, 33, {}, GlobalMemory(1 << 12))


def test_estimate_grid_time_waves():
    kernel = _demo()
    gmem = GlobalMemory(1 << 12)
    res = simulate_resident_blocks(kernel, V100, params={}, gmem=gmem,
                                   threads_per_block=32, num_blocks=1)
    one_wave = estimate_grid_time(V100, res, total_blocks=80, blocks_simulated=1)
    two_waves = estimate_grid_time(V100, res, total_blocks=81, blocks_simulated=1)
    assert two_waves == pytest.approx(2 * one_wave)


def test_occupancy_zero_rejected():
    kernel = assemble(
        ".kernel big\n.smem 131072\nEXIT;\n"
    )
    with pytest.raises(SimLaunchError):
        run_grid(kernel, RTX2070, 1, 32, {}, GlobalMemory(1 << 12))
