"""Device specs, global-memory coalescing, shared-memory bank conflicts."""

import numpy as np
import pytest

from repro.common import SimLaunchError, SimMemoryFault
from repro.gpusim import (
    RTX2070,
    V100,
    GlobalMemory,
    SharedMemory,
    bank_conflict_report,
    coalesced_sectors,
)


# ---------------------------------------------------------------------------
# Device specs
# ---------------------------------------------------------------------------
def test_v100_peak_matches_fig2():
    assert V100.peak_fp32_tflops == pytest.approx(15.7, abs=0.05)


def test_rtx2070_peak():
    assert RTX2070.peak_fp32_tflops == pytest.approx(7.46, abs=0.05)


def test_turing_smem_limit():
    assert RTX2070.smem_per_block == 64 * 1024
    assert V100.smem_per_block == 96 * 1024


def test_occupancy_section_7_1():
    """48 KB-smem 256-thread blocks: 2 per SM on V100, 1 on Turing."""
    assert V100.occupancy(256, 126, 48 * 1024) == 2
    assert RTX2070.occupancy(256, 126, 48 * 1024) == 1


def test_occupancy_register_bound():
    # 253 registers × 256 threads = 64768 of 65536: one block.
    assert V100.occupancy(256, 253, 48 * 1024) == 1


def test_occupancy_rejects_oversubscription():
    with pytest.raises(SimLaunchError):
        V100.occupancy(2048, 32, 0)
    with pytest.raises(SimLaunchError):
        V100.occupancy(256, 300, 0)
    with pytest.raises(SimLaunchError):
        RTX2070.occupancy(256, 32, 96 * 1024)


# ---------------------------------------------------------------------------
# Global memory
# ---------------------------------------------------------------------------
def test_alloc_alignment_and_null_guard():
    g = GlobalMemory(1 << 16)
    a = g.alloc(100)
    assert a >= 256 and a % 256 == 0
    b = g.alloc(100)
    assert b >= a + 100


def test_array_roundtrip():
    g = GlobalMemory(1 << 16)
    x = np.arange(12, dtype=np.float32).reshape(3, 4)
    ptr = g.alloc_array(x)
    np.testing.assert_array_equal(g.read_array(ptr, (3, 4)), x)


def test_warp_load_store():
    g = GlobalMemory(1 << 16)
    ptr = g.alloc(1024)
    addrs = ptr + 4 * np.arange(32, dtype=np.int64)
    mask = np.ones(32, dtype=bool)
    vals = np.arange(32, dtype=np.uint32).reshape(32, 1)
    g.store_warp(addrs, vals, 4, mask)
    out = g.load_warp(addrs, 4, mask)
    np.testing.assert_array_equal(out[:, 0], np.arange(32))


def test_masked_lanes_untouched():
    g = GlobalMemory(1 << 16)
    ptr = g.alloc(1024)
    addrs = ptr + 4 * np.arange(32, dtype=np.int64)
    mask = np.zeros(32, dtype=bool)
    mask[5] = True
    g.store_warp(addrs, np.full((32, 1), 7, np.uint32), 4, mask)
    data = g.read_array(ptr, (32,), np.uint32)
    assert data[5] == 7 and data[0] == 0


def test_out_of_bounds_faults():
    g = GlobalMemory(1 << 12)
    with pytest.raises(SimMemoryFault):
        g.load_warp(np.array([0], dtype=np.int64), 4, np.array([True]))
    with pytest.raises(SimMemoryFault):
        g.load_warp(np.array([1 << 13], dtype=np.int64), 4, np.array([True]))
    with pytest.raises(SimMemoryFault):
        g.alloc(1 << 13)


def test_misaligned_access_faults():
    g = GlobalMemory(1 << 12)
    ptr = g.alloc(64)
    with pytest.raises(SimMemoryFault):
        g.load_warp(np.array([ptr + 2], dtype=np.int64), 4, np.array([True]))


def test_l2_resident_regions():
    g = GlobalMemory(1 << 16)
    a = g.alloc(256, l2_resident=True)
    b = g.alloc(256)
    assert g.is_l2_resident(a) and not g.is_l2_resident(b)


# ---------------------------------------------------------------------------
# Coalescing (the §4 layout goal: 32 lanes → minimal 32-byte sectors)
# ---------------------------------------------------------------------------
def test_fully_coalesced_32bit():
    base = 1024
    addrs = base + 4 * np.arange(32, dtype=np.int64)
    assert coalesced_sectors(addrs, 4, np.ones(32, bool)) == 4  # 128 B


def test_strided_access_wastes_sectors():
    addrs = 1024 + 128 * np.arange(32, dtype=np.int64)
    assert coalesced_sectors(addrs, 4, np.ones(32, bool)) == 32


def test_vector_loads_count_all_sectors():
    addrs = 1024 + 16 * np.arange(32, dtype=np.int64)
    assert coalesced_sectors(addrs, 16, np.ones(32, bool)) == 16  # 512 B


def test_masked_off_warp_touches_nothing():
    addrs = 1024 + 4 * np.arange(32, dtype=np.int64)
    assert coalesced_sectors(addrs, 4, np.zeros(32, bool)) == 0


# ---------------------------------------------------------------------------
# Shared memory banks (§4.3)
# ---------------------------------------------------------------------------
def _lanes(fn):
    return np.array([fn(l) for l in range(32)], dtype=np.int64)


def test_lds32_sequential_conflict_free():
    report = bank_conflict_report(_lanes(lambda l: 4 * l), 4, np.ones(32, bool))
    assert report.phases == 1 and report.conflicts == 0


def test_lds32_same_word_broadcasts():
    report = bank_conflict_report(_lanes(lambda l: 0), 4, np.ones(32, bool))
    assert report.conflicts == 0


def test_lds32_stride_2_conflicts():
    report = bank_conflict_report(_lanes(lambda l: 8 * l), 4, np.ones(32, bool))
    assert report.cycles == 2  # classic 2-way conflict


def test_lds128_costs_four_phases():
    report = bank_conflict_report(_lanes(lambda l: 16 * l), 16, np.ones(32, bool))
    assert report.phases == 4 and report.conflicts == 0


def test_lds128_figure3_filter_pattern_conflict_free():
    """Fig. 3: lane l loads filter segment 4·c(l) floats, c = (l%16)//2."""
    addrs = _lanes(lambda l: 16 * ((l % 16) // 2))
    report = bank_conflict_report(addrs, 16, np.ones(32, bool))
    assert report.conflicts == 0


def test_lds128_figure3_input_pattern_conflict_free():
    """Fig. 3: lane l loads input segment 4·r(l), r = (l%2) + 2·(l//16)."""
    addrs = _lanes(lambda l: 16 * ((l % 2) + 2 * (l // 16)))
    report = bank_conflict_report(addrs, 16, np.ones(32, bool))
    assert report.conflicts == 0


def test_lds128_row_straddling_pattern_conflicts():
    """Lanes 128 B apart hit the same banks with distinct words (§4.3:
    'other patterns do lead to bank conflict')."""
    addrs = _lanes(lambda l: 128 * (l % 4))
    report = bank_conflict_report(addrs, 16, np.ones(32, bool))
    assert report.conflicts > 0


def test_shared_memory_load_store_roundtrip():
    s = SharedMemory(4096)
    addrs = 4 * np.arange(32, dtype=np.int64)
    mask = np.ones(32, bool)
    s.store_warp(addrs, np.arange(32, dtype=np.uint32).reshape(32, 1), 4, mask)
    out, report = s.load_warp(addrs, 4, mask)
    np.testing.assert_array_equal(out[:, 0], np.arange(32))
    assert report.conflicts == 0


def test_shared_memory_bounds():
    s = SharedMemory(256)
    with pytest.raises(SimMemoryFault):
        s.load_warp(np.array([256], dtype=np.int64), 4, np.array([True]))
