"""Differential cycle-equivalence: fast engine vs. reference loop.

The pre-decoded fast path (``gpusim/decode.py`` + ``gpusim/fastsim.py``)
must be a *bit-exact* replacement for the per-cycle reference loop in
``SMSimulator._run_reference`` — same cycle counts, same sector/conflict
counters, same occupancy — on the kernels the paper actually measures.

The default tier spot-checks a few schedules on both devices with the
full ``Counters`` record compared field-for-field.  The ``slow`` tier
sweeps the entire QUICK_SPACE grid (the CI search space) plus Table-1
layer kernels.
"""

import dataclasses

import pytest

from repro.gpusim import DEVICES
from repro.kernels import clear_kernel_cache, clear_simulation_cache
from repro.kernels.runner import _simulate_main_loop
from repro.models import paper_layers
from repro.sched.space import PAPER_SCHEDULE, QUICK_SPACE

DEVICE_KEYS = ("RTX2070", "V100")


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    # Every simulation must actually run through the engine under test:
    # a sim-cache hit (memory or disk) would compare a payload against
    # itself and prove nothing.
    monkeypatch.setenv("REPRO_SIM_CACHE", "0")
    clear_simulation_cache()
    clear_kernel_cache()
    yield
    clear_simulation_cache()
    clear_kernel_cache()


def _counters(monkeypatch, engine, prob, device, tunables, iters=3):
    monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
    result = _simulate_main_loop(prob, device, tunables, iters, None)
    return dataclasses.asdict(result.counters), result.occupancy


def _assert_engines_agree(monkeypatch, prob, device, tunables, iters=3):
    ref_counters, ref_occ = _counters(
        monkeypatch, "reference", prob, device, tunables, iters
    )
    fast_counters, fast_occ = _counters(
        monkeypatch, "fast", prob, device, tunables, iters
    )
    assert fast_occ == ref_occ
    assert fast_counters == ref_counters, {
        k: (ref_counters[k], fast_counters[k])
        for k in ref_counters
        if ref_counters[k] != fast_counters[k]
    }


def _surrogate():
    from repro.perfmodel.layer_model import _SURROGATE

    return _SURROGATE


# ---------------------------------------------------------------------------
# Default tier: representative schedules, both devices, full Counters.
# ---------------------------------------------------------------------------
SPOT_SCHEDULES = [PAPER_SCHEDULE] + QUICK_SPACE.candidates()[:2]


@pytest.mark.parametrize("dev_key", DEVICE_KEYS)
@pytest.mark.parametrize(
    "schedule", SPOT_SCHEDULES, ids=lambda s: s.label()
)
def test_engines_agree_on_spot_schedules(monkeypatch, dev_key, schedule):
    _assert_engines_agree(
        monkeypatch, _surrogate(), DEVICES[dev_key], schedule.to_tunables()
    )


def test_engines_agree_on_table1_layer(monkeypatch):
    """A real Table-1 ResNet layer, not just the search surrogate."""
    prob = paper_layers()[0]
    _assert_engines_agree(
        monkeypatch, prob, DEVICES["RTX2070"], PAPER_SCHEDULE.to_tunables()
    )


# ---------------------------------------------------------------------------
# Slow tier: the whole QUICK_SPACE grid and more Table-1 layers.
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("dev_key", DEVICE_KEYS)
@pytest.mark.parametrize(
    "schedule", QUICK_SPACE.candidates(), ids=lambda s: s.label()
)
def test_engines_agree_across_quick_space(monkeypatch, dev_key, schedule):
    _assert_engines_agree(
        monkeypatch, _surrogate(), DEVICES[dev_key], schedule.to_tunables()
    )


@pytest.mark.slow
@pytest.mark.parametrize("layer_idx", range(4))
def test_engines_agree_on_more_table1_layers(monkeypatch, layer_idx):
    # All four Table-1 layers at N=32 (larger batches overflow the
    # 128 MB synthetic main-loop arena, see _main_loop_arena).
    prob = paper_layers(batch_sizes=(32,))[layer_idx]
    _assert_engines_agree(
        monkeypatch, prob, DEVICES["V100"], PAPER_SCHEDULE.to_tunables()
    )
