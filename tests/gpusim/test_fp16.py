"""Packed-half (fp16×2) support — the §8.3 port's substrate."""

import numpy as np
import pytest

from repro.gpusim import ExecutionContext, GlobalMemory, SharedMemory, V100, WarpState
from repro.gpusim.engine import execute
from repro.sass import assemble, parse_line


@pytest.fixture
def ctx():
    return ExecutionContext(
        GlobalMemory(1 << 16), SharedMemory(4096), np.zeros(4096, np.uint8),
        device=V100,
    )


def _pack_halves(lo, hi):
    pair = np.stack(
        [np.full(32, lo, np.float16), np.full(32, hi, np.float16)], axis=1
    )
    return pair.reshape(-1).view(np.uint16).astype(np.uint32)


def _set_halves(warp, idx, lo, hi):
    raw = np.zeros(64, dtype=np.float16)
    raw[0::2] = lo
    raw[1::2] = hi
    warp.regs[idx] = raw.view(np.uint32)


def _get_halves(warp, idx):
    raw = np.ascontiguousarray(warp.regs[idx]).view(np.float16)
    return raw[0::2].astype(np.float32), raw[1::2].astype(np.float32)


def test_hfma2(ctx):
    warp = WarpState(0, 0)
    _set_halves(warp, 1, 2.0, 3.0)
    _set_halves(warp, 2, 4.0, 5.0)
    _set_halves(warp, 3, 0.5, 0.25)
    execute(parse_line("HFMA2 R0, R1, R2, R3;"), warp, ctx)
    lo, hi = _get_halves(warp, 0)
    assert (lo == 8.5).all() and (hi == 15.25).all()


def test_hadd2_hmul2(ctx):
    warp = WarpState(0, 0)
    _set_halves(warp, 1, 1.5, -2.0)
    _set_halves(warp, 2, 0.5, 4.0)
    execute(parse_line("HADD2 R0, R1, R2;"), warp, ctx)
    lo, hi = _get_halves(warp, 0)
    assert (lo == 2.0).all() and (hi == 2.0).all()
    execute(parse_line("HMUL2 R0, R1, R2;"), warp, ctx)
    lo, hi = _get_halves(warp, 0)
    assert (lo == 0.75).all() and (hi == -8.0).all()


def test_hfma2_on_fma_pipe(ctx):
    warp = WarpState(0, 0)
    result = execute(parse_line("HFMA2 R0, R1, R2, R3;"), warp, ctx)
    assert result.pipe == "fma" and result.pipe_cycles == 2


def test_hfma2_doubles_flops_per_issue():
    """§8.3: the fp16 port doubles throughput at the same issue rate."""
    from repro.gpusim import GlobalMemory as GM
    from repro.gpusim import simulate_resident_blocks

    def kernel(mnemonic):
        lines = [".kernel halfpeak", ".registers 64"]
        for i in range(256):
            d = i % 32
            lines.append(f"{mnemonic} R{d}, R{33 + 2 * (i % 8)}, R{48 + 2 * (i % 8)}, R{d};")
        lines.append("EXIT;")
        return assemble("\n".join(lines))

    half = simulate_resident_blocks(
        kernel("HFMA2"), V100, params={}, gmem=GM(1 << 12),
        threads_per_block=256,
    ).counters
    full = simulate_resident_blocks(
        kernel("FFMA"), V100, params={}, gmem=GM(1 << 12),
        threads_per_block=256,
    ).counters
    assert half.cycles == full.cycles  # same pipe occupancy
    assert half.flops == 2 * full.flops  # double the math


def test_hfma2_roundtrip_encoding():
    from repro.sass import decode_instruction, encode_instruction

    instr = parse_line("HFMA2 R0, R2, R4, R6;")
    assert decode_instruction(encode_instruction(instr)).text() == instr.text()
