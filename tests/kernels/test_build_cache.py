"""The kernel-build cache and the simulation-result cache."""

import dataclasses

import pytest

from repro.common import ConvProblem
from repro.gpusim import RTX2070
from repro.kernels import (
    Tunables,
    build_fused_kernel,
    clear_kernel_cache,
    clear_simulation_cache,
    get_kernel_cache_stats,
    get_sim_cache_stats,
    measure_main_loop,
    reset_kernel_cache_stats,
    reset_sim_cache_stats,
    set_kernel_cache_limit,
)
from repro.kernels.cache import KernelBuildCache, sim_cache_key
from repro.kernels.winograd_f22 import WinogradF22Kernel

PROB = ConvProblem(n=32, c=16, h=8, w=8, k=64, name="cache-test")


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    # Disable the simulation-result memo so the build cache is actually
    # exercised (a sim-cache hit would skip the build path entirely).
    monkeypatch.setenv("REPRO_SIM_CACHE", "0")
    clear_kernel_cache()
    reset_kernel_cache_stats()
    clear_simulation_cache()
    reset_sim_cache_stats()
    yield
    clear_kernel_cache()
    reset_kernel_cache_stats()
    clear_simulation_cache()
    reset_sim_cache_stats()
    set_kernel_cache_limit(64)


@pytest.fixture
def _count_builds(monkeypatch):
    """Count actual generator→assembler passes, independent of counters."""
    calls = []
    real_build = WinogradF22Kernel.build

    def counting_build(self, *args, **kwargs):
        calls.append(args)
        return real_build(self, *args, **kwargs)

    monkeypatch.setattr(WinogradF22Kernel, "build", counting_build)
    return calls


# ---------------------------------------------------------------------------
# Kernel build cache
# ---------------------------------------------------------------------------
def test_second_measurement_performs_zero_new_builds(_count_builds):
    first = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    builds_after_first = len(_count_builds)
    # One assembler pass for the long run; the short differential run is
    # derived from it by patching the trip-count immediate.
    assert builds_after_first == 1

    second = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    assert len(_count_builds) == builds_after_first  # zero new assembler passes
    assert second == first  # bit-identical measurement

    stats = get_kernel_cache_stats()
    assert stats.builds == 2  # two cache entries built (one full, one derived)
    assert stats.misses == 2
    assert stats.hits == 2
    assert stats.size == 2
    assert stats.hit_rate == 0.5


def test_derived_build_is_bit_identical_to_fresh_assembly():
    """An iters-sibling derived by patching the trip-count immediate
    (plus its decode, seeded via ``derive_decode``) must match a from-
    scratch assembly byte for byte."""
    build_fused_kernel(
        PROB, Tunables(), RTX2070.name, main_loop_only=True, iters=5
    )
    derived = build_fused_kernel(
        PROB, Tunables(), RTX2070.name, main_loop_only=True, iters=3
    )
    clear_kernel_cache()
    fresh = build_fused_kernel(
        PROB, Tunables(), RTX2070.name, main_loop_only=True, iters=3
    )
    assert derived is not fresh
    assert derived.text == fresh.text
    assert derived.labels == fresh.labels
    assert [i.text() for i in derived.instructions] == [
        i.text() for i in fresh.instructions
    ]


def test_derived_decode_matches_fresh_decode():
    """The decode seeded for a derived build must equal re-decoding the
    derived program from scratch, field for field."""
    from repro.gpusim.decode import _DECODE_CACHE, decode_program

    build_fused_kernel(
        PROB, Tunables(), RTX2070.name, main_loop_only=True, iters=5
    )
    derived = build_fused_kernel(
        PROB, Tunables(), RTX2070.name, main_loop_only=True, iters=3
    )
    seeded = _DECODE_CACHE[id(derived.instructions)][1]
    _DECODE_CACHE.clear()
    fresh = decode_program(derived.instructions)
    assert seeded.n == fresh.n
    for field in (
        "stall", "yield_flag", "write_bar", "read_bar", "wait_mask",
        "pipe", "base_cycles", "base_lat", "kind", "name", "cclass",
        "is_mem", "participating", "conflict_cleared", "reuse_map",
        "_src_regs",
    ):
        assert list(getattr(seeded, field)) == list(getattr(fresh, field)), field


def test_distinct_tunables_are_distinct_entries():
    a = build_fused_kernel(PROB, Tunables(), RTX2070.name)
    b = build_fused_kernel(PROB, Tunables(ldg_interleave=4), RTX2070.name)
    assert a is not b
    stats = get_kernel_cache_stats()
    assert stats.misses == 2 and stats.hits == 0

    # ...but the *same* Tunables spelled differently is the same entry
    # (ldg_interleave=8 is the default), and a hit returns the identical
    # assembled object.
    c = build_fused_kernel(PROB, Tunables(ldg_interleave=8), RTX2070.name)
    assert c is a
    assert get_kernel_cache_stats().hits == 1


def test_eviction_under_size_limit():
    set_kernel_cache_limit(1)
    build_fused_kernel(PROB, Tunables(), RTX2070.name)
    build_fused_kernel(PROB, Tunables(sts_interleave=2), RTX2070.name)
    stats = get_kernel_cache_stats()
    assert stats.size == 1
    assert stats.evictions == 1
    # The first kernel was evicted: asking again rebuilds.
    build_fused_kernel(PROB, Tunables(), RTX2070.name)
    assert get_kernel_cache_stats().misses == 3


def test_kill_switch_bypasses_cache(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", "0")
    a = build_fused_kernel(PROB, Tunables(), RTX2070.name)
    b = build_fused_kernel(PROB, Tunables(), RTX2070.name)
    assert a is not b
    stats = get_kernel_cache_stats()
    assert stats.hits == 0 and stats.misses == 0 and stats.builds == 0


def test_limit_validation():
    with pytest.raises(ValueError):
        set_kernel_cache_limit(0)
    with pytest.raises(ValueError):
        KernelBuildCache(max_entries=0)


# ---------------------------------------------------------------------------
# Simulation-result cache
# ---------------------------------------------------------------------------
def test_sim_cache_key_covers_every_field():
    base = sim_cache_key("site", prob=PROB, tunables=Tunables(), iters=3)
    assert base == sim_cache_key("site", prob=PROB, tunables=Tunables(), iters=3)
    assert base != sim_cache_key("site", prob=PROB, tunables=Tunables(), iters=1)
    assert base != sim_cache_key("other", prob=PROB, tunables=Tunables(), iters=3)
    assert base != sim_cache_key(
        "site", prob=PROB, tunables=Tunables(sts_interleave=2), iters=3
    )
    other_prob = dataclasses.replace(PROB, n=PROB.n * 2)
    assert base != sim_cache_key("site", prob=other_prob, tunables=Tunables(), iters=3)


def test_sim_cache_memory_and_disk_tiers(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))

    cold = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    assert get_sim_cache_stats().stores == 2  # long + short run persisted

    warm = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    assert get_sim_cache_stats().memory_hits == 2
    assert warm == cold

    # Drop the memory tier: the next run replays from disk, bit-identical.
    clear_simulation_cache()
    replayed = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    assert get_sim_cache_stats().disk_hits == 2
    assert replayed == cold
    assert any(tmp_path.rglob("*.json"))


def test_sim_cache_corrupt_disk_entry_is_a_miss(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    cold = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    for path in tmp_path.rglob("*.json"):
        path.write_text("not json{")
    clear_simulation_cache()
    recomputed = measure_main_loop(PROB, device=RTX2070, num_blocks=1)
    assert recomputed == cold
