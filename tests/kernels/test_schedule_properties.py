"""Property tests for the schedule machinery (paper §6).

Two invariants keep the schedule space safe to search:

1. :func:`repro.kernels.weave` only *re-orders* — the woven stream is a
   permutation of primary + side with both relative orders preserved
   and ``.reuse`` pairs never split;
2. every :class:`repro.sched.Schedule` candidate generates a main loop
   with exactly the base schedule's FFMA stream (same multiset of
   operations, none dropped or duplicated — interleaving and yield
   flags move instructions, they never change the math) and passes
   sasslint clean.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import RTX2070
from repro.kernels import Tunables, weave
from repro.kernels.cache import build_fused_kernel
from repro.perfmodel.layer_model import _SURROGATE
from repro.runtime import ExecutionContext
from repro.sched import PAPER_SCHEDULE, QUICK_SPACE, Schedule
from repro.sched.search import lint_gate_candidate

# ---------------------------------------------------------------------------
# 1. weave() is a permutation
# ---------------------------------------------------------------------------

# Primary lines modelled as FFMAs, a fraction carrying .reuse (the flag
# weave() must not split from its successor).
primary_lines = st.lists(
    st.booleans().map(lambda reuse: "FFMA.reuse;" if reuse else "FFMA;"),
    min_size=0, max_size=64,
)
side_lines = st.integers(min_value=0, max_value=24).map(
    lambda n: [f"SIDE{i};" for i in range(n)]
)


@given(primary=primary_lines, side=side_lines,
       spacing=st.integers(min_value=1, max_value=12),
       start=st.integers(min_value=0, max_value=12))
@settings(max_examples=200, deadline=None)
def test_weave_is_a_permutation(primary, side, spacing, start):
    # Tag primary lines so duplicates stay distinguishable: a dropped
    # line and a duplicated line would otherwise cancel out.
    primary = [f"{line}#p{i}" for i, line in enumerate(primary)]
    out = weave(primary, side, spacing, start)

    assert sorted(out) == sorted(primary + side)  # nothing lost, nothing doubled
    assert [l for l in out if "#p" in l] == primary  # primary order kept
    assert [l for l in out if l.startswith("SIDE")] == side  # side order kept


@given(primary=primary_lines, side=side_lines,
       spacing=st.integers(min_value=1, max_value=12),
       start=st.integers(min_value=0, max_value=12))
@settings(max_examples=200, deadline=None)
def test_weave_never_splits_reuse_pairs(primary, side, spacing, start):
    primary = [f"{line}#p{i}" for i, line in enumerate(primary)]
    out = weave(primary, side, spacing, start)
    # The guarantee: a side instruction never separates a .reuse line
    # from its *next primary* instruction (the reuse cache only survives
    # back-to-back issue).  A trailing .reuse has no successor, so side
    # leftovers appended after the last primary line are fine.
    for idx, (prev, line) in enumerate(zip(out, out[1:]), start=1):
        if ".reuse" in prev and line.startswith("SIDE"):
            assert not any("#p" in later for later in out[idx:]), (
                f"side instruction woven into a .reuse pair: {prev} -> {line}"
            )


# ---------------------------------------------------------------------------
# 2. every candidate keeps the FFMA stream and lints clean
# ---------------------------------------------------------------------------

def _ffma_multiset(kernel):
    """The kernel's FFMA operations, control codes excluded.

    Yield strategies rewrite control fields and interleaving moves
    instructions — neither may change *which* FFMAs execute, so the
    comparison key is the operation itself (guard, dest, sources).
    """
    return sorted(
        repr((i.guard, i.dest, i.srcs, i.flags))
        for i in kernel.instructions if i.name == "FFMA"
    )


def _main_loop(schedule: Schedule, ctx) -> object:
    return build_fused_kernel(
        _SURROGATE, schedule.to_tunables(), RTX2070.name,
        main_loop_only=True, iters=3, context=ctx,
    )


@pytest.fixture(scope="module")
def ctx():
    return ExecutionContext(device=RTX2070)


@pytest.fixture(scope="module")
def base_ffmas(ctx):
    return _ffma_multiset(_main_loop(PAPER_SCHEDULE, ctx))


@pytest.mark.parametrize(
    "schedule", QUICK_SPACE.candidates(),
    ids=lambda s: s.label(),
)
def test_candidate_preserves_ffmas_and_lints_clean(schedule, ctx, base_ffmas):
    kernel = _main_loop(schedule, ctx)
    assert _ffma_multiset(kernel) == base_ffmas
    lint_gate_candidate(schedule, RTX2070, context=ctx)  # raises on any error


@given(
    yield_strategy=st.sampled_from(["natural", "nvcc8", "cudnn7"]),
    ldg_interleave=st.integers(min_value=1, max_value=12),
    sts_interleave=st.integers(min_value=1, max_value=8),
    double_buffer=st.sampled_from([1, 2]),
)
@settings(max_examples=12, deadline=None)
@pytest.mark.slow
def test_offgrid_schedules_also_preserve_ffmas(
    yield_strategy, ldg_interleave, sts_interleave, double_buffer,
):
    """The invariant holds off the search grid too (any valid knob value)."""
    ctx = ExecutionContext(device=RTX2070)
    schedule = Schedule(
        yield_strategy=yield_strategy, ldg_interleave=ldg_interleave,
        sts_interleave=sts_interleave, double_buffer=double_buffer,
    )
    base = Tunables(double_buffer=double_buffer)
    kernel = _main_loop(schedule, ctx)
    base_kernel = build_fused_kernel(
        _SURROGATE, base, RTX2070.name, main_loop_only=True, iters=3,
        context=ctx,
    )
    assert _ffma_multiset(kernel) == _ffma_multiset(base_kernel)
    lint_gate_candidate(schedule, RTX2070, context=ctx)
