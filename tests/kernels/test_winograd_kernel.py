"""Structural invariants of the generated Winograd SASS kernel."""

import pytest

from repro.common import ConvConfigError, ConvProblem
from repro.kernels import BC, BN, Tunables, WinogradF22Kernel
from repro.kernels.winograd_f22 import _magic_u32
from repro.sass import validate_control

PROB = ConvProblem(n=32, c=16, h=8, w=8, k=64, name="test")


def _gen(tunables=Tunables(), prob=PROB):
    return WinogradF22Kernel(prob, tunables)


# ---------------------------------------------------------------------------
# Construction rules
# ---------------------------------------------------------------------------
def test_register_budget_is_exactly_table5():
    gen = _gen()
    assert gen.num_regs == 253  # Table 5's total


def test_smem_budget_is_table7():
    gen = _gen()
    assert gen.smem_fil_bytes == 32 * 1024
    assert gen.smem_in_bytes == 16 * 1024
    assert gen.smem_bytes == 48 * 1024


def test_bk32_uses_less():
    gen = _gen(Tunables(bk=32), ConvProblem(n=32, c=16, h=8, w=8, k=32))
    assert gen.num_regs < 200
    assert gen.smem_bytes == 32 * 1024


def test_grid_shape():
    gen = _gen()
    # 4×4 tiles × 32 batch / 32 per block = 16 tile blocks; K/64 = 1.
    assert gen.grid == (16, 1)


@pytest.mark.parametrize(
    "kwargs,msg",
    [
        (dict(n=31, c=16, h=8, w=8, k=64), "multiple of 32"),
        (dict(n=32, c=15, h=8, w=8, k=64), "multiple of 8"),
        (dict(n=32, c=16, h=8, w=8, k=65), "multiple of bk"),
    ],
)
def test_geometry_requirements(kwargs, msg):
    with pytest.raises(ConvConfigError, match=msg):
        WinogradF22Kernel(ConvProblem(**kwargs))


def test_tunables_validation():
    with pytest.raises(ConvConfigError):
        Tunables(bk=48)
    with pytest.raises(ConvConfigError):
        Tunables(smem_layout="fancy")
    with pytest.raises(ConvConfigError):
        Tunables(ldg_interleave=0)
    with pytest.raises(ConvConfigError):
        Tunables(double_buffer=3)


def test_magic_u32_division():
    for d in (3, 7, 28, 56, 96, 127):
        m = _magic_u32(d)
        for n in (0, 1, d - 1, d, 12345, 1 << 20):
            assert (n * m) >> 32 == n // d, (n, d)


# ---------------------------------------------------------------------------
# Emission invariants
# ---------------------------------------------------------------------------
def test_main_loop_ffma_count_is_1024_per_iteration():
    body = _gen().loop_body()
    ffmas = [l for l in body if "FFMA" in l]
    assert len(ffmas) == 1024  # §4.3: 1024 FFMAs per thread per bc-iteration


def test_itf_is_exactly_36_fadds():
    itf = _gen().itf_stream()
    assert len(itf) == 36  # 32 transform FADDs + 4 in-place row saves
    assert all("FADD" in l for l in itf)


def test_ldg_stream_counts():
    ldgs = [l for l in _gen().ldg_stream() if "LDG" in l]
    assert len(ldgs) == 48  # 32 filter + 16 input (§3.4's prefetch registers)
    # The 16 input loads are predicated by the unpacked zero-pad mask.
    assert sum(1 for l in ldgs if "@P" in l) == 16


def test_sts_stream_counts():
    gen = _gen()
    assert len(gen.sts_filter_stream()) == 32
    assert len(gen.sts_input_stream()) == 16


def test_lds_step_is_8_vector_loads():
    lines = _gen().lds_step(0, 3)
    assert len(lines) == 8
    assert all("LDS.128" in l for l in lines)


def test_tile_major_layout_needs_scalar_loads():
    lines = _gen(Tunables(smem_layout="tile_major")).lds_step(0, 0)
    assert sum(1 for l in lines if "LDS.32" in l) == 16


def test_ffma_reuse_pattern_follows_paper_rule():
    """§4.3: first FFMA of each pair carries .reuse on the filter operand."""
    lines = _gen().ffma_step(0)
    assert len(lines) == 128
    for first, second in zip(lines[::2], lines[1::2]):
        assert ".reuse" in first
        assert ".reuse" not in second


def test_ffma_bank_parity_rule():
    """First of each pair must not have all-same-parity sources."""
    import re

    for line in _gen().ffma_step(0)[::2]:
        regs = [int(r) for r in re.findall(r"R(\d+)", line)]
        dest, a, b, c = regs
        assert len({a % 2, b % 2, c % 2}) > 1, line


def test_full_kernel_assembles_hazard_free():
    kernel = _gen().build()
    assert validate_control(kernel.instructions) == []
    assert kernel.max_register() + 1 <= 253


def test_single_buffer_keeps_ffma_count():
    body = _gen(Tunables(double_buffer=1)).loop_body()
    ffmas = [l for l in body if "FFMA" in l]
    assert len(ffmas) == 1024  # the §3.4 ablation changes latency, not math


def test_single_buffer_reads_one_fragment_block():
    """depth=1: every k-step computes from register block 0 — the LDS
    bursts all write the same fragment block instead of ping-ponging."""
    single = _gen(Tunables(double_buffer=1)).loop_body()
    double = _gen(Tunables(double_buffer=2)).loop_body()
    lds = lambda body: [l for l in body if "LDS" in l]  # noqa: E731
    assert len(lds(single)) == len(lds(double))  # same traffic ...
    assert single != double  # ... different schedule


def test_single_buffer_assembles_hazard_free():
    kernel = _gen(Tunables(double_buffer=1)).build()
    assert validate_control(kernel.instructions) == []
    assert kernel.max_register() + 1 <= 253


@pytest.mark.parametrize("strategy", ["natural", "nvcc8", "cudnn7"])
def test_yield_strategies_assemble(strategy):
    kernel = _gen(Tunables(yield_strategy=strategy)).build(main_loop_only=True)
    yields = sum(1 for i in kernel.instructions if i.control.yield_flag)
    if strategy == "natural":
        assert yields == 0
    else:
        assert yields > 100


@pytest.mark.parametrize("ldg", [2, 4, 8])
def test_ldg_interleave_changes_positions(ldg):
    body = _gen(Tunables(ldg_interleave=ldg)).loop_body()
    first_ldg = next(i for i, l in enumerate(body) if "LDG" in l)
    assert first_ldg <= ldg * 2 + 8


def test_fig3_lane_map_formula():
    """The prologue's (r, c) computation must match Fig. 3's table."""
    fig3_rows = {  # input-offset row → lanes
        0: [0, 2, 4, 6, 8, 10, 12, 14],
        1: [1, 3, 5, 7, 9, 11, 13, 15],
        2: [16, 18, 20, 22, 24, 26, 28, 30],
        3: [17, 19, 21, 23, 25, 27, 29, 31],
    }
    for lane in range(32):
        sub, quad = lane & 15, lane >> 4
        r = (sub & 1) + 2 * quad
        c = sub >> 1
        assert lane in fig3_rows[r]
        # Fig. 3 columns: row lists lanes in filter-column order.
        assert fig3_rows[r].index(lane) == c


def test_source_contains_structure():
    src = _gen().source()
    assert ".kernel winograd_f22_bk64" in src
    assert "MAIN_LOOP:" in src
    assert "P2R" in src and "R2P" in src  # the §3.5 mask packing
    assert "BAR.SYNC;" in src


def test_constants_exported():
    assert BC == 8 and BN == 32
