"""The kernel-generation CLI and whole-kernel assembler round trips."""

import pytest

from repro.kernels.__main__ import main
from repro.sass import assemble, read_cubin


def test_winograd_source_to_stdout(capsys):
    assert main(["winograd", "--layer", "Conv3", "--batch", "32"]) == 0
    out = capsys.readouterr().out
    assert ".kernel winograd_f22_bk64" in out
    assert "MAIN_LOOP:" in out


def test_winograd_sass_file_reassembles(tmp_path, capsys):
    path = tmp_path / "k.sass"
    assert main(["-o", str(path), "winograd", "--layer", "Conv2",
                 "--batch", "32", "--yield-strategy", "cudnn7"]) == 0
    kernel = assemble(path.read_text(), auto_schedule=True)
    assert kernel.meta.name == "winograd_f22_bk64"
    assert kernel.max_register() + 1 <= 253


def test_winograd_cubin_output(tmp_path, capsys):
    path = tmp_path / "k.cubin"
    assert main(["--cubin", str(path), "winograd", "--layer", "Conv5",
                 "--batch", "32"]) == 0
    loaded = read_cubin(path.read_bytes())
    assert loaded.meta.registers == 253


def test_ftf_and_gemm_sources(capsys):
    assert main(["ftf", "--layer", "Conv4", "--batch", "32"]) == 0
    assert ".kernel winograd_ftf" in capsys.readouterr().out
    assert main(["gemm", "--batch", "16", "--m", "64", "--n", "32",
                 "--kd", "16"]) == 0
    assert ".kernel batched_gemm" in capsys.readouterr().out


def test_tunables_flow_through(capsys):
    assert main(["winograd", "--layer", "Conv3", "--batch", "32",
                 "--bk", "32", "--no-p2r"]) == 0
    out = capsys.readouterr().out
    assert "winograd_f22_bk32" in out
    assert "P2R" not in out  # mask packing disabled


@pytest.mark.slow
def test_full_kernel_disassembly_round_trip():
    """Disassemble the whole 2000+-instruction Winograd kernel and
    reassemble it to identical bytes — the assembler at scale."""
    from repro.common import ConvProblem
    from repro.kernels import WinogradF22Kernel

    kernel = WinogradF22Kernel(ConvProblem(n=32, c=16, h=8, w=8, k=64)).build()
    listing = kernel.disassemble()
    again = assemble(listing)
    assert again.text == kernel.text
