"""The FTF kernel (§4.1) and the batched-GEMM kernel (§2.3) on the simulator."""

import numpy as np
import pytest

from repro.common import ConvConfigError, ConvProblem, kcrs_to_crsk, make_rng, random_filter
from repro.gpusim import GlobalMemory, V100, run_grid
from repro.kernels import (
    BatchedGemmKernel,
    FilterTransformKernel,
    TILES_PER_BLOCK,
    Tunables,
)
from repro.sass import validate_control
from repro.winograd import FusedWinogradConv

pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# FTF kernel
# ---------------------------------------------------------------------------
def _run_ftf(c, k, seed=0):
    prob = ConvProblem(n=32, c=c, h=4, w=4, k=k)
    gen = FilterTransformKernel(prob)
    kernel = gen.build()
    assert validate_control(kernel.instructions) == []
    f_crsk = kcrs_to_crsk(random_filter(prob, make_rng(seed)))
    gmem = GlobalMemory()
    fil_ptr = gmem.alloc_array(f_crsk)
    out_ptr = gmem.alloc(4 * c * 16 * k)
    run_grid(kernel, V100, grid=gen.grid, threads_per_block=256,
             params={"fil_ptr": fil_ptr, "out_ptr": out_ptr}, gmem=gmem)
    got = gmem.read_array(out_ptr, (c, 4, 4, k))
    ref = FusedWinogradConv().transform_filters(f_crsk)
    np.testing.assert_allclose(got, ref, atol=1e-6)
    return gen


def test_ftf_exact_block():
    gen = _run_ftf(8, 64)  # C·K = 512 = exactly one block
    assert gen.grid == 1


def test_ftf_ragged_tail():
    _run_ftf(5, 7)  # 35 tiles: most threads predicated off


def test_ftf_multi_block():
    gen = _run_ftf(16, 96)
    assert gen.grid == -(-16 * 96 // TILES_PER_BLOCK)


def test_ftf_rejects_non3x3():
    with pytest.raises(ConvConfigError):
        FilterTransformKernel(ConvProblem(n=1, c=1, h=8, w=8, k=1, r=5, s=5, pad=2))


def test_ftf_on_device_end_to_end():
    """run_fused_sass_conv(ftf_on_device=True) = the all-SASS pipeline."""
    from repro.common import conv_tolerance, random_activation
    from repro.convolution import direct_conv2d
    from repro.kernels import run_fused_sass_conv

    prob = ConvProblem(n=32, c=8, h=4, w=4, k=64)
    rng = make_rng(9)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y, _ = run_fused_sass_conv(x, f, ftf_on_device=True)
    np.testing.assert_allclose(
        y, direct_conv2d(x, f), atol=conv_tolerance(prob) * 8
    )


# ---------------------------------------------------------------------------
# Batched GEMM kernel
# ---------------------------------------------------------------------------
def _run_gemm(e, m, n, kd, tunables=Tunables(), seed=0):
    gen = BatchedGemmKernel(e, m, n, kd, tunables)
    kernel = gen.build()
    assert validate_control(kernel.instructions) == []
    rng = make_rng(seed)
    a = (rng.random((kd, e, m), dtype=np.float32) - 0.5).astype(np.float32)
    b = (rng.random((kd, e, n), dtype=np.float32) - 0.5).astype(np.float32)
    gmem = GlobalMemory()
    params, c_ptr = gen.alloc_buffers(gmem, a, b)
    run_grid(kernel, V100, grid=gen.grid, threads_per_block=256,
             params=params, gmem=gmem)
    got = gmem.read_array(c_ptr, (e, m, n))
    np.testing.assert_allclose(got, gen.reference(a, b), atol=1e-5)
    return gen


def test_gemm_single_block():
    gen = _run_gemm(16, 64, 32, 8)
    assert gen.grid == (1, 1)


def test_gemm_multi_iteration():
    _run_gemm(16, 64, 32, 24)


def test_gemm_multi_tile_multi_batch():
    gen = _run_gemm(32, 128, 64, 16)
    assert gen.grid == (2, 4)


def test_gemm_scheduling_variants_same_result():
    gen = BatchedGemmKernel(16, 64, 32, 16)
    rng = make_rng(5)
    a = rng.random((16, 16, 64), dtype=np.float32)
    b = rng.random((16, 16, 32), dtype=np.float32)
    results = []
    for tun in (Tunables(), Tunables(yield_strategy="cudnn7", ldg_interleave=2)):
        g = BatchedGemmKernel(16, 64, 32, 16, tun)
        gmem = GlobalMemory()
        params, c_ptr = g.alloc_buffers(gmem, a, b)
        run_grid(g.build(), V100, grid=g.grid, threads_per_block=256,
                 params=params, gmem=gmem)
        results.append(gmem.read_array(c_ptr, (16, 64, 32)))
    np.testing.assert_array_equal(results[0], results[1])


def test_gemm_validation():
    with pytest.raises(ConvConfigError):
        BatchedGemmKernel(15, 64, 32, 8)
    with pytest.raises(ConvConfigError):
        BatchedGemmKernel(16, 63, 32, 8)
    with pytest.raises(ConvConfigError):
        BatchedGemmKernel(16, 64, 32, 8, Tunables(bk=32))


def test_gemm_shares_register_budget():
    gen = BatchedGemmKernel(16, 64, 32, 8)
    assert gen.num_regs == 253  # same Table-5 footprint as the Winograd loop
