"""Instruction weaving and yield-strategy post-processing."""

import pytest

from repro.kernels import apply_yield_strategy, is_float_line, weave


def test_weave_spacing():
    primary = [f"F{i};" for i in range(10)]
    side = ["S0;", "S1;", "S2;"]
    out = weave(primary, side, spacing=3)
    assert out.index("S0;") == 3
    assert out.index("S1;") == 7
    assert out.index("S2;") == 11


def test_weave_leftovers_appended():
    out = weave(["F0;"], ["S0;", "S1;"], spacing=5)
    assert out == ["F0;", "S0;", "S1;"]


def test_weave_empty_side():
    primary = ["A;", "B;"]
    assert weave(primary, [], 2) == primary


def test_weave_start_delays_first_insert():
    out = weave([f"F{i};" for i in range(10)], ["S;"], spacing=2, start=4)
    assert out.index("S;") == 6


def test_weave_preserves_primary_order():
    primary = [f"F{i};" for i in range(6)]
    out = weave(primary, ["S;"], 2)
    assert [l for l in out if l.startswith("F")] == primary


def test_is_float_line():
    assert is_float_line("FFMA R0, R1, R2, R3;")
    assert is_float_line("[B------:R-:W-:-:S01] FADD R0, R1, R2;")
    assert is_float_line("@P1 FMUL R0, R1, R2;")
    assert not is_float_line("IADD3 R0, R1, R2, RZ;")
    assert not is_float_line("LDS.128 R4, [R1];")
    assert not is_float_line("LOOP:")


def _count_yields(lines):
    return sum(1 for l in lines if ":Y:" in l)


def test_natural_strategy_is_identity():
    lines = [f"FFMA R{i}, R1, R2, R3;" for i in range(16)]
    assert apply_yield_strategy(lines, "natural") == lines


def test_nvcc8_yields_every_8_floats():
    lines = [f"FFMA R{i % 8}, R1, R2, R3;" for i in range(24)]
    out = apply_yield_strategy(lines, "nvcc8")
    assert _count_yields(out) == 3
    assert ":Y:" in out[7] and ":Y:" in out[15] and ":Y:" in out[23]


def test_cudnn7_period():
    lines = [f"FFMA R{i % 8}, R1, R2, R3;" for i in range(21)]
    out = apply_yield_strategy(lines, "cudnn7")
    assert _count_yields(out) == 3


def test_yield_counts_only_float_instructions():
    lines = []
    for i in range(8):
        lines.append("LDS.128 R4, [R1];")
        lines.append(f"FFMA R{i}, R1, R2, R3;")
    out = apply_yield_strategy(lines, "nvcc8")
    assert _count_yields(out) == 1
    assert ":Y:" in out[-1]  # the 8th FFMA


def test_yield_preserves_existing_control_fields():
    lines = ["[B0-----:R2:W3:-:S05] FFMA R0, R1, R2, R3;"] * 8
    out = apply_yield_strategy(lines, "nvcc8")
    assert out[7] == "[B0-----:R2:W3:Y:S05] FFMA R0, R1, R2, R3;"
    assert out[6] == lines[6]


def test_unknown_strategy():
    with pytest.raises(ValueError):
        apply_yield_strategy([], "whatever")
