"""Golden gate: every shipped/generated kernel must lint clean.

The paper's performance story *is* these invariants — hazard-free
control codes, conflict-free register banks via ``.reuse`` (Fig. 4),
conflict-free shared-memory layouts (Table 4, Fig. 5), a ≤253-register
main loop (Table 5) — so codegen and scheduling changes must not be able
to reintroduce a violation silently.  These tests are the CI `sass-lint`
job's in-process twin.
"""

import pytest

from repro.common.errors import LintError
from repro.common.problem import ConvProblem
from repro.kernels.ftf import FilterTransformKernel
from repro.kernels.gemm import BatchedGemmKernel
from repro.kernels.runner import ensure_lint_clean
from repro.kernels.winograd_f22 import Tunables, WinogradF22Kernel
from repro.sass import parse_program
from repro.sass.analysis import Severity, errors, lint_kernel
from repro.sass.assembler import AssembledKernel
from repro.sass.preprocess import KernelMeta

PROB = ConvProblem(n=32, c=16, h=8, w=8, k=64)

SWEEP = [
    ("default", Tunables()),
    ("nvcc8", Tunables(yield_strategy="nvcc8")),
    ("cudnn7", Tunables(yield_strategy="cudnn7")),
    ("tile_major", Tunables(smem_layout="tile_major")),
    ("bk32", Tunables(bk=32)),
    ("no_p2r", Tunables(use_p2r=False)),
    ("ldg4", Tunables(ldg_interleave=4)),
]


@pytest.mark.parametrize("label,tunables", SWEEP, ids=[s[0] for s in SWEEP])
def test_winograd_zero_errors_across_tunables(label, tunables):
    """Every schedule/layout the generator can emit is hazard- and
    correctness-clean (warnings are allowed: ablations trip them on
    purpose)."""
    kernel = WinogradF22Kernel(PROB, tunables).build()
    assert errors(lint_kernel(kernel)) == []


@pytest.mark.parametrize("label,tunables", SWEEP, ids=[s[0] for s in SWEEP])
def test_winograd_main_loop_zero_errors(label, tunables):
    kernel = WinogradF22Kernel(PROB, tunables).build(
        main_loop_only=True, iters=2
    )
    assert errors(lint_kernel(kernel)) == []


def test_winograd_default_config_has_zero_warnings():
    """The paper's configuration is *fully* conflict-free: no register- or
    shared-memory-bank warnings either, only the occupancy/liveness info
    lines."""
    diags = lint_kernel(WinogradF22Kernel(PROB).build())
    assert [d.rule for d in diags] == ["OCC001", "OCC002", "LV001"]
    assert all(d.severity is Severity.INFO for d in diags)


def test_winograd_tile_major_ablation_warns_but_runs():
    """The tile-major layout exists to measure the cost of smem conflicts
    (§4.4): the analyzer must flag them as warnings, not errors."""
    diags = lint_kernel(
        WinogradF22Kernel(PROB, Tunables(smem_layout="tile_major")).build()
    )
    smem = [d for d in diags if d.rule == "SM001"]
    assert smem and all(d.severity is Severity.WARNING for d in smem)


def test_gemm_lints_clean():
    diags = lint_kernel(BatchedGemmKernel(16, 64, 32, 16).build())
    assert [d.rule for d in diags] == ["OCC001", "OCC002", "LV001"]


def test_ftf_lints_clean():
    assert errors(lint_kernel(FilterTransformKernel(PROB).build())) == []


def test_liveness_agrees_with_declared_registers():
    """Peak live registers never exceeds what the generator declared."""
    kernel = WinogradF22Kernel(PROB).build()
    (lv,) = [d for d in lint_kernel(kernel) if d.rule == "LV001"]
    peak = int(lv.message.split()[3])
    assert 0 < peak <= kernel.meta.registers


def _hazardous_kernel():
    instrs = parse_program(
        "LDG.E R0, [R2];\nIADD3 R3, R0, 0x1, RZ;\nEXIT;\n"
    ).instructions
    meta = KernelMeta(name="bad", registers=8)
    return AssembledKernel(
        meta=meta, instructions=instrs, labels={}, text=b"\x00" * 16
    )


def test_launch_gate_raises_on_errors():
    with pytest.raises(LintError) as exc:
        ensure_lint_clean(_hazardous_kernel())
    assert exc.value.diagnostics
    assert "CTRL002" in str(exc.value)


def test_launch_gate_passes_and_memoizes_clean_kernel():
    kernel = WinogradF22Kernel(PROB).build()
    ensure_lint_clean(kernel)
    from repro.runtime import current_context

    gate = current_context().lint_gate
    assert (kernel.meta.name, hash(kernel.text)) in gate._clean
    ensure_lint_clean(kernel)  # second call is the memoized no-op
