"""The CFG-based analysis passes: mutation tests and docs sync.

Each mutation test takes a correct program, applies the one-line bug the
pass exists to catch (dropped wait on a branchy path, read of a register
defined on one arm, dropped BAR.SYNC between cross-warp accesses,
divergent barrier) and asserts the pass reports exactly that bug while
the correct version stays clean.
"""

import pathlib
import re

import pytest

from repro.gpusim import RTX2070, V100
from repro.sass import parse_program
from repro.sass.analysis import (
    TURING_LIMITS,
    VOLTA_LIMITS,
    ArchLimits,
    BarrierDivergencePass,
    ControlCodePass,
    OccupancyPass,
    Severity,
    SharedRacePass,
    UninitRegisterPass,
    default_passes,
    lint_instructions,
    static_report,
)
from repro.sass.analysis.base import AnalysisContext
from repro.sass.analysis.occupancy import _occupancy
from repro.sass.preprocess import KernelMeta


def _branchy(src):
    parsed = parse_program(src)
    instrs = parsed.instructions
    for pos, instr in enumerate(instrs):
        if instr.name == "BRA" and isinstance(instr.target, str):
            instrs[pos].target = parsed.labels[instr.target] - (pos + 1)
    return instrs


def _rules(diags):
    return [d.rule for d in diags]


# ---------------------------------------------------------------------------
# Path-sensitive control codes: dropped wait on one arm (CTRL001)
# ---------------------------------------------------------------------------

_WAIT_BOTH_ARMS = (
    "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
    "@P3 BRA skip;\n"
    "[B0-----:R-:W-:-:S04] IADD3 R3, R0, 0x1, RZ;\n"
    "skip:\n"
    "{ctrl} IADD3 R4, R0, 0x1, RZ;\n"
    "EXIT;\n"
)


def test_ctrl_wait_on_both_arms_is_clean():
    instrs = _branchy(_WAIT_BOTH_ARMS.format(ctrl="[B0-----:R-:W-:-:S04]"))
    assert lint_instructions(instrs, passes=[ControlCodePass()]) == []


def test_ctrl001_dropped_wait_on_branchy_path():
    # Mutation: the join-point consumer no longer waits on barrier 0.
    # Along the fall arm the earlier wait cleared it, but along the taken
    # arm the LDG is still in flight — a straight-line checker (which
    # sees the fall arm's wait) misses this.
    instrs = _branchy(_WAIT_BOTH_ARMS.format(ctrl="[B------:R-:W-:-:S04]"))
    diags = lint_instructions(instrs, passes=[ControlCodePass()])
    assert _rules(diags) == ["CTRL001"]
    (diag,) = diags
    assert diag.severity is Severity.ERROR
    assert "R0" in diag.message and "barrier 0" in diag.message
    assert instrs[diag.pos].name == "IADD3"
    assert instrs[diag.pos].dest.index == 4  # the join-point consumer


# ---------------------------------------------------------------------------
# Uninitialized reads (UR001/UR002)
# ---------------------------------------------------------------------------


def test_ur_fully_defined_is_clean():
    instrs = _branchy(
        "MOV R0, 0x1;\n"
        "MOV R1, 0x5;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BRA skip;\n"
        "MOV R1, 0x7;\n"
        "skip:\n"
        "IADD3 R2, R1, 0x1, RZ;\n"
        "EXIT;\n"
    )
    assert lint_instructions(instrs, passes=[UninitRegisterPass()]) == []


def test_ur002_defined_on_one_arm_only():
    # Mutation: R1's unconditional definition is gone; only the fall arm
    # writes it before the join-point read.
    instrs = _branchy(
        "MOV R0, 0x1;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BRA skip;\n"
        "MOV R1, 0x7;\n"
        "skip:\n"
        "IADD3 R2, R1, 0x1, RZ;\n"
        "EXIT;\n"
    )
    diags = lint_instructions(instrs, passes=[UninitRegisterPass()])
    assert _rules(diags) == ["UR002"]
    (diag,) = diags
    assert diag.severity is Severity.WARNING
    assert "R1" in diag.message and "some paths" in diag.message
    assert instrs[diag.pos].name == "IADD3"


def test_ur001_never_defined():
    diags = lint_instructions(
        parse_program("IADD3 R2, R9, 0x1, RZ;\nEXIT;\n").instructions,
        passes=[UninitRegisterPass()],
    )
    assert _rules(diags) == ["UR001"]
    assert diags[0].severity is Severity.ERROR
    assert "R9" in diags[0].message


def test_ur001_undefined_predicate_guard():
    diags = lint_instructions(
        parse_program("@P5 MOV R0, 0x1;\nEXIT;\n").instructions,
        passes=[UninitRegisterPass()],
    )
    assert any(d.rule == "UR001" and "P5" in d.message for d in diags)


def test_ur_predicated_write_counts_as_definition():
    # The paper's @Py LDG prefetch idiom: conditional overwrite of an
    # already-zeroed register must not warn.
    instrs = _branchy(
        "MOV R0, 0x1;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 MOV R1, 0x7;\n"
        "IADD3 R2, R1, 0x1, RZ;\n"
        "EXIT;\n"
    )
    assert lint_instructions(instrs, passes=[UninitRegisterPass()]) == []


# ---------------------------------------------------------------------------
# Cross-warp shared-memory races (RACE001/RACE002)
# ---------------------------------------------------------------------------

_PRODUCER_CONSUMER = (
    "S2R R0, SR_TID.X;\n"
    "SHF.L R1, R0, 0x2, RZ;\n"
    "STS [R1], R0;\n"
    "{bar}"
    "LDS R3, [RZ];\n"  # every warp reads word 0 (warp 0 wrote it)
    "EXIT;\n"
)


def test_race_bar_separates_epochs():
    instrs = parse_program(
        _PRODUCER_CONSUMER.format(bar="BAR.SYNC;\n")
    ).instructions
    assert lint_instructions(instrs, passes=[SharedRacePass()]) == []


def test_race001_dropped_bar_between_sts_and_lds():
    # Mutation: no BAR.SYNC between the per-thread stores and the
    # cross-warp broadcast load of word 0.
    instrs = parse_program(_PRODUCER_CONSUMER.format(bar="")).instructions
    diags = lint_instructions(instrs, passes=[SharedRacePass()])
    assert _rules(diags) == ["RACE001"]
    (diag,) = diags
    assert diag.severity is Severity.ERROR
    assert diag.instruction == "LDS"
    assert "store at instruction 2" in diag.message


def test_race001_cross_warp_store_overlap():
    # Every lane of every warp stores to word 0: the single store
    # instruction races with itself across warps.
    instrs = parse_program(
        "S2R R0, SR_TID.X;\nSTS [RZ], R0;\nEXIT;\n"
    ).instructions
    diags = lint_instructions(instrs, passes=[SharedRacePass()])
    assert _rules(diags) == ["RACE001"]
    assert "warps write overlapping" in diags[0].message


def test_race002_unresolved_addresses_reported():
    instrs = parse_program(
        "[B------:R-:W0:-:S01] LDG.E R1, [R2];\n"
        "[B0-----:R-:W-:-:S04] STS [R1], R1;\n"  # data-dependent address
        "EXIT;\n"
    ).instructions
    diags = lint_instructions(instrs, passes=[SharedRacePass()])
    assert _rules(diags) == ["RACE002"]
    assert diags[0].severity is Severity.INFO


def test_race_guarded_access_killed_on_contradicting_edge():
    # The @P0 store only happens when P0 is true; along the !P0 edge to
    # the load there is no pending store, so no race.
    instrs = _branchy(
        "S2R R0, SR_TID.X;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@!P0 BRA skip;\n"
        "@P0 STS [RZ], R0;\n"
        "BAR.SYNC;\n"
        "skip:\n"
        "LDS R3, [RZ];\n"
        "EXIT;\n"
    )
    assert lint_instructions(instrs, passes=[SharedRacePass()]) == []


# ---------------------------------------------------------------------------
# Barrier divergence (BD001/BD002)
# ---------------------------------------------------------------------------


def test_bd001_bar_under_tid_guard():
    instrs = parse_program(
        "S2R R0, SR_TID.X;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BAR.SYNC;\n"
        "EXIT;\n"
    ).instructions
    diags = lint_instructions(instrs, passes=[BarrierDivergencePass()])
    assert _rules(diags) == ["BD001"]
    assert diags[0].severity is Severity.ERROR
    assert "P0" in diags[0].message


def test_bd_bar_under_ctaid_guard_is_clean():
    # SR_CTAID is warp-uniform: the whole block agrees on the guard.
    instrs = parse_program(
        "S2R R0, SR_CTAID.X;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BAR.SYNC;\n"
        "EXIT;\n"
    ).instructions
    assert lint_instructions(instrs, passes=[BarrierDivergencePass()]) == []


def test_bd002_bar_on_one_arm_of_divergent_branch():
    instrs = _branchy(
        "S2R R0, SR_TID.X;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BRA skip;\n"
        "BAR.SYNC;\n"
        "skip:\n"
        "EXIT;\n"
    )
    diags = lint_instructions(instrs, passes=[BarrierDivergencePass()])
    assert _rules(diags) == ["BD002"]
    assert diags[0].severity is Severity.WARNING
    assert instrs[diags[0].pos].name == "BAR"


def test_bd002_bar_above_divergent_branch_is_clean():
    instrs = _branchy(
        "S2R R0, SR_TID.X;\n"
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "BAR.SYNC;\n"
        "@P0 BRA skip;\n"
        "MOV R1, 0x1;\n"
        "skip:\n"
        "EXIT;\n"
    )
    assert lint_instructions(instrs, passes=[BarrierDivergencePass()]) == []


def test_bd_taint_cleared_by_uniform_overwrite():
    instrs = parse_program(
        "S2R R0, SR_TID.X;\n"
        "MOV R0, 0x4;\n"  # uniform overwrite clears the taint
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"
        "@P0 BAR.SYNC;\n"
        "EXIT;\n"
    ).instructions
    assert lint_instructions(instrs, passes=[BarrierDivergencePass()]) == []


# ---------------------------------------------------------------------------
# Occupancy (OCC001-OCC003) and the DeviceSpec differential
# ---------------------------------------------------------------------------


def test_occ_info_reports():
    instrs = parse_program("MOV R0, 0x1;\nEXIT;\n").instructions
    meta = KernelMeta(name="t", registers=64, smem_bytes=16 * 1024)
    diags = lint_instructions(
        instrs, meta=meta, passes=[OccupancyPass()]
    )
    assert _rules(diags) == ["OCC001", "OCC002"]
    assert all(d.severity is Severity.INFO for d in diags)
    assert "4 block(s)/SM" in diags[1].message  # 64KB smem / 16KB


def test_occ003_unlaunchable_kernel():
    meta = KernelMeta(name="t", registers=64, smem_bytes=65 * 1024)
    diags = lint_instructions(
        parse_program("MOV R0, 0x1;\nEXIT;\n").instructions,
        meta=meta, passes=[OccupancyPass()],
    )
    assert "OCC003" in _rules(diags)
    (occ3,) = [d for d in diags if d.rule == "OCC003"]
    assert occ3.severity is Severity.ERROR


def test_static_report_cycles_count_stalls_and_yields():
    instrs = parse_program(
        "[B------:R-:W-:-:S04] MOV R0, 0x1;\n"
        "[B------:R-:W-:Y:S02] MOV R1, 0x2;\n"
        "EXIT;\n"
    ).instructions
    report = static_report(AnalysisContext(instructions=instrs))
    # 4 + 2 + 1 (EXIT issues for >= 1 cycle) + 1 yield switch.
    assert report.static_issue_cycles == 8
    assert report.yields == 1
    assert report.num_instructions == 3


def _limits_of(spec) -> ArchLimits:
    return ArchLimits(
        name=spec.name,
        max_warps_per_sm=spec.max_warps_per_sm,
        max_threads_per_block=spec.max_threads_per_block,
        registers_per_sm=spec.registers_per_sm,
        smem_per_sm=spec.smem_per_sm,
        smem_per_block=spec.smem_per_block,
        max_registers_per_thread=spec.max_registers_per_thread,
    )


@pytest.mark.parametrize("spec", [RTX2070, V100], ids=lambda s: s.arch)
def test_occupancy_matches_device_spec(spec):
    """Differential: the analyzer's mirror tracks ``DeviceSpec.occupancy``."""
    from repro.common.errors import SimLaunchError

    limits = _limits_of(spec)
    for warps in (1, 4, 8, 16, 32, 64):
        for regs in (32, 64, 128, 255, 300):
            for smem in (0, 4096, 34 * 1024, 64 * 1024, 100 * 1024):
                blocks, _ = _occupancy(warps, regs, smem, limits)
                try:
                    expected = spec.occupancy(warps * 32, regs, smem)
                except SimLaunchError:
                    expected = 0  # the static mirror reports 0, not a raise
                assert blocks == expected, (warps, regs, smem)


def test_builtin_limits_track_device_specs():
    # TURING_LIMITS/VOLTA_LIMITS are duplicated from gpusim.arch (the
    # assembler layer must not import the simulator); keep them in step.
    for limits, spec in ((TURING_LIMITS, RTX2070), (VOLTA_LIMITS, V100)):
        assert limits.max_warps_per_sm == spec.max_warps_per_sm
        assert limits.max_threads_per_block == spec.max_threads_per_block
        assert limits.registers_per_sm == spec.registers_per_sm
        assert limits.smem_per_sm == spec.smem_per_sm
        assert limits.smem_per_block == spec.smem_per_block
        assert limits.max_registers_per_thread == spec.max_registers_per_thread


# ---------------------------------------------------------------------------
# Docs sync
# ---------------------------------------------------------------------------


def test_every_rule_code_is_documented():
    doc = pathlib.Path(__file__).parents[2] / "docs" / "sass_lint.md"
    text = doc.read_text(encoding="utf-8")
    doc_codes = set(re.findall(r"\b([A-Z]{2,5}\d{3})\b", text))
    pass_codes = set()
    for pass_ in default_passes():
        assert pass_.rules, f"pass {pass_.name} declares no rules"
        pass_codes.update(pass_.rules)
    missing = pass_codes - doc_codes
    assert not missing, f"rules undocumented in docs/sass_lint.md: {missing}"
    stale = doc_codes - pass_codes
    assert not stale, f"docs mention rules no pass emits: {stale}"


def test_pass_names_are_unique_and_stable():
    names = [p.name for p in default_passes()]
    assert len(names) == len(set(names))
    assert "control-codes" in names and "cfg" in names


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
