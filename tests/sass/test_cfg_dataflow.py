"""CFG construction and the generic dataflow solver.

Unit tests pin the block decomposition and edge conditions on crafted
programs; hypothesis generates random (branchy) instruction streams and
checks the structural invariants every downstream pass relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sass import parse_program
from repro.sass.analysis import (
    CfgPass,
    build_cfg,
    lint_instructions,
    solve_backward,
    solve_forward,
)
from repro.sass.analysis.dataflow import DataflowDiverged


def _prog(src):
    return parse_program(src).instructions


def _branchy(src):
    """Parse and resolve label branch targets to relative offsets."""
    parsed = parse_program(src)
    instrs = parsed.instructions
    for pos, instr in enumerate(instrs):
        if instr.name == "BRA" and isinstance(instr.target, str):
            instrs[pos].target = parsed.labels[instr.target] - (pos + 1)
    return instrs


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


def test_linear_program_is_one_block():
    cfg = build_cfg(_prog("MOV R0, 0x1;\nMOV R1, 0x2;\nEXIT;\n"))
    assert len(cfg.blocks) == 1
    assert (cfg.blocks[0].start, cfg.blocks[0].end) == (0, 3)
    assert cfg.edges == []
    assert cfg.reachable == {0}


def test_bar_terminates_block_with_seq_edge():
    cfg = build_cfg(_prog("MOV R0, 0x1;\nBAR.SYNC;\nMOV R1, 0x2;\nEXIT;\n"))
    assert [(b.start, b.end) for b in cfg.blocks] == [(0, 2), (2, 4)]
    (edge,) = cfg.edges
    assert (edge.src, edge.dst, edge.kind, edge.cond) == (0, 1, "seq", None)


def test_conditional_branch_edges_carry_conditions():
    instrs = _branchy(
        "ISETP.EQ.AND P3, PT, R0, RZ, PT;\n"
        "@P3 BRA skip;\n"
        "MOV R1, 0x1;\n"
        "skip:\n"
        "MOV R2, 0x2;\n"
        "EXIT;\n"
    )
    cfg = build_cfg(instrs)
    assert len(cfg.blocks) == 3
    kinds = {(e.src, e.dst): e for e in cfg.edges}
    taken = kinds[(0, 2)]
    fall = kinds[(0, 1)]
    assert taken.kind == "taken"
    assert (taken.cond.pred, taken.cond.value) == (3, True)
    assert fall.kind == "fall"
    assert (fall.cond.pred, fall.cond.value) == (3, False)
    assert taken.cond.text() == "P3" and fall.cond.text() == "!P3"


def test_negated_guard_inverts_conditions():
    instrs = _branchy(
        "@!P1 BRA out;\nMOV R1, 0x1;\nout:\nEXIT;\n"
    )
    cfg = build_cfg(instrs)
    taken = next(e for e in cfg.edges if e.kind == "taken")
    assert (taken.cond.pred, taken.cond.value) == (1, False)


def test_backward_branch_makes_loop():
    instrs = _branchy(
        "MOV R0, 0x1;\n"
        "loop:\n"
        "IADD3 R0, R0, 0x1, RZ;\n"
        "@P0 BRA loop;\n"
        "EXIT;\n"
    )
    cfg = build_cfg(instrs)
    loop_block = cfg.block_of[1]
    back = [e for e in cfg.successors[loop_block] if e.dst == loop_block]
    assert back and back[0].kind == "taken"
    assert cfg.rpo()[0] == 0


def test_unconditional_branch_has_no_fall_edge():
    instrs = _branchy(
        "BRA over;\nMOV R1, 0x1;\nover:\nEXIT;\n"
    )
    cfg = build_cfg(instrs)
    entry_succs = cfg.successors[0]
    assert [e.kind for e in entry_succs] == ["taken"]
    assert entry_succs[0].cond is None


def test_cfg001_unreachable_block_warns():
    instrs = _branchy("BRA over;\nMOV R1, 0x1;\nover:\nEXIT;\n")
    diags = lint_instructions(instrs, passes=[CfgPass()])
    assert [d.rule for d in diags] == ["CFG001"]
    assert diags[0].pos == 1


def test_cfg002_out_of_range_target_errors():
    instrs = _prog("BRA target;\nEXIT;\n")
    instrs[0].target = 100  # resolved but far outside the program
    diags = lint_instructions(instrs, passes=[CfgPass()])
    assert "CFG002" in [d.rule for d in diags]
    # The bad branch degrades to a fall-through, keeping block 1 live.
    cfg = build_cfg(instrs)
    assert cfg.reachable == {0, 1}


def test_unresolved_label_falls_through():
    instrs = _prog("@P0 BRA somewhere;\nMOV R1, 0x1;\nEXIT;\n")
    cfg = build_cfg(instrs)
    assert [e.kind for e in cfg.successors[0]] == ["fall"]
    assert lint_instructions(instrs, passes=[CfgPass()]) == []


def test_predicated_exit_falls_through():
    cfg = build_cfg(_prog("@P2 EXIT;\nMOV R0, 0x1;\nEXIT;\n"))
    (edge,) = cfg.successors[0]
    assert edge.kind == "fall"
    assert (edge.cond.pred, edge.cond.value) == (2, False)


def test_empty_program():
    cfg = build_cfg([])
    assert cfg.blocks == [] and cfg.edges == [] and cfg.rpo() == []


# ---------------------------------------------------------------------------
# Property tests: random branchy programs
# ---------------------------------------------------------------------------


@st.composite
def random_programs(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    kinds = draw(st.lists(
        st.sampled_from(["mov", "bra", "bar", "exit"]),
        min_size=n, max_size=n,
    ))
    targets = draw(st.lists(
        st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n,
    ))
    guards = draw(st.lists(
        st.sampled_from(["", "@P0 ", "@!P1 "]), min_size=n, max_size=n,
    ))
    lines = []
    for i, kind in enumerate(kinds):
        lines.append(f"L{i}:")
        if kind == "mov":
            lines.append(f"MOV R{i % 8}, 0x1;")
        elif kind == "bar":
            lines.append("BAR.SYNC;")
        elif kind == "exit":
            lines.append(f"{guards[i]}EXIT;")
        else:
            lines.append(f"{guards[i]}BRA L{targets[i]};")
    return _branchy("\n".join(lines) + "\n")


@settings(max_examples=200, deadline=None)
@given(instrs=random_programs())
def test_every_instruction_in_exactly_one_block(instrs):
    cfg = build_cfg(instrs)
    covered = []
    for block in cfg.blocks:
        assert block.start < block.end  # no empty blocks
        covered.extend(block.positions())
        for pos in block.positions():
            assert cfg.block_of[pos] == block.id
    assert covered == list(range(len(instrs)))


@settings(max_examples=200, deadline=None)
@given(instrs=random_programs())
def test_edges_land_on_block_boundaries(instrs):
    cfg = build_cfg(instrs)
    starts = {b.start: b.id for b in cfg.blocks}
    for edge in cfg.edges:
        assert 0 <= edge.src < len(cfg.blocks)
        assert 0 <= edge.dst < len(cfg.blocks)
        # Every edge target is a leader.
        assert cfg.blocks[edge.dst].start in starts
        src_block = cfg.blocks[edge.src]
        if edge.kind == "taken":
            last = instrs[src_block.end - 1]
            target = src_block.end - 1 + 1 + last.target
            assert cfg.blocks[edge.dst].start == target
        elif edge.kind in ("fall", "seq"):
            assert cfg.blocks[edge.dst].start == src_block.end
    # Successor/predecessor tables mirror the edge list.
    assert sum(len(s) for s in cfg.successors) == len(cfg.edges)
    assert sum(len(p) for p in cfg.predecessors) == len(cfg.edges)


@settings(max_examples=100, deadline=None)
@given(instrs=random_programs())
def test_rpo_covers_exactly_the_reachable_blocks(instrs):
    cfg = build_cfg(instrs)
    order = cfg.rpo()
    assert len(order) == len(set(order))
    assert set(order) == cfg.reachable
    assert order[0] == 0


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
)
def test_linear_programs_are_single_block(n):
    src = "".join(f"MOV R{i % 8}, 0x1;\n" for i in range(n))
    cfg = build_cfg(_prog(src))
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].positions() == range(0, n)


# ---------------------------------------------------------------------------
# Worklist solver
# ---------------------------------------------------------------------------


def _diamond():
    return _branchy(
        "ISETP.EQ.AND P0, PT, R0, RZ, PT;\n"  # b0
        "@P0 BRA right;\n"
        "MOV R1, 0x1;\n"                       # b1 (left)
        "BRA join;\n"
        "right:\n"
        "MOV R2, 0x2;\n"                       # b2 (right)
        "join:\n"
        "EXIT;\n"                              # b3
    )


def test_forward_counts_paths_through_diamond():
    cfg = build_cfg(_diamond())

    def transfer(block, state):
        return state + len(list(block.positions()))

    in_states, out_states = solve_forward(cfg, 0, transfer, max)
    join_block = cfg.block_of[len(cfg.instructions) - 1]
    # Longest path to the join: entry(2) + left arm(2) = 4 instructions.
    assert in_states[join_block] == 4
    assert out_states[join_block] == 5


def test_forward_reaches_fixpoint_on_loop():
    cfg = build_cfg(_branchy(
        "MOV R0, 0x1;\nloop:\nIADD3 R0, R0, 0x1, RZ;\n"
        "@P0 BRA loop;\nEXIT;\n"
    ))

    # Union-of-visited-blocks saturates after one trip around the loop.
    def transfer(block, state):
        return state | {block.id}

    def join(states):
        merged = set()
        for s in states:
            merged |= s
        return frozenset(merged)

    in_states, out_states = solve_forward(
        cfg, frozenset(), transfer, join,
        equal=lambda a, b: a == b,
    )
    loop_block = cfg.block_of[1]
    assert loop_block in out_states[loop_block]  # loop-carried fact


def test_forward_edge_transfer_filters_by_condition():
    cfg = build_cfg(_diamond())

    def transfer(block, state):
        return state

    def join(states):
        merged = set()
        for s in states:
            merged |= s
        return frozenset(merged)

    def edge_transfer(edge, state):
        if edge.cond is None:
            return state
        return state | {edge.cond.text()}

    in_states, _ = solve_forward(
        cfg, frozenset(), transfer, join, edge_transfer=edge_transfer
    )
    join_block = cfg.block_of[len(cfg.instructions) - 1]
    assert in_states[join_block] == {"P0", "!P0"}


def test_backward_solver_propagates_from_exit():
    cfg = build_cfg(_diamond())

    def transfer(block, state):
        return state + 1

    in_states, out_states = solve_backward(cfg, 0, transfer, max)
    # The entry block sees the deepest chain below it.
    assert in_states[0] == 3


def test_solver_divergence_is_detected():
    cfg = build_cfg(_branchy(
        "MOV R0, 0x1;\nloop:\nIADD3 R0, R0, 0x1, RZ;\n"
        "@P0 BRA loop;\nEXIT;\n"
    ))

    # A transfer that never stabilizes (strictly increasing counter).
    def transfer(block, state):
        return state + 1

    with pytest.raises(DataflowDiverged):
        solve_forward(cfg, 0, transfer, max)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
