"""Instruction IR: operand classification, dependency sets, validation."""

import pytest

from repro.common import EncodingError
from repro.sass import ControlCode, Imm, Instruction, Mem, Pred, Reg, parse_line


def test_b_slot_rules():
    assert parse_line("FFMA R0, R1, R2, R3;").b_slot() == 1
    assert parse_line("MOV R0, R1;").b_slot() == 1 if False else True
    assert parse_line("MOV R0, 0x1;").b_slot() == 0
    assert parse_line("EXIT;").b_slot() is None


def test_validate_rejects_imm_outside_b_slot():
    instr = Instruction(name="FFMA", dest=Reg(0), srcs=(Imm(1), Reg(1), Reg(2)))
    with pytest.raises(EncodingError):
        instr.validate()


def test_validate_requires_dest():
    with pytest.raises(EncodingError):
        Instruction(name="FFMA", srcs=(Reg(1), Reg(2), Reg(3))).validate()


def test_validate_rejects_dest_on_destless_op():
    with pytest.raises(EncodingError):
        Instruction(name="EXIT", dest=Reg(0)).validate()


def test_validate_rejects_bad_flag():
    with pytest.raises(EncodingError):
        Instruction(
            name="FFMA", dest=Reg(0), srcs=(Reg(1), Reg(2), Reg(3)),
            flags=("WAT",),
        ).validate()


def test_validate_memory_needs_mem_operand():
    with pytest.raises(EncodingError):
        Instruction(name="LDG", dest=Reg(0), flags=("E",)).validate()


def test_validate_vector_alignment():
    bad = Instruction(
        name="LDG", dest=Reg(5), mem=Mem(Reg(2)), flags=("128", "E")
    )
    with pytest.raises(EncodingError):
        bad.validate()
    ok = Instruction(
        name="LDG", dest=Reg(8), mem=Mem(Reg(2)), flags=("128", "E")
    )
    ok.validate()


def test_reuse_flag_needs_register_slot():
    instr = Instruction(
        name="MOV", dest=Reg(0), srcs=(Imm(1),),
        control=ControlCode(reuse=1),
    )
    with pytest.raises(EncodingError):
        instr.validate()


def test_dependency_sets_alu():
    i = parse_line("@P2 FFMA R0, R1, R2, R3;")
    assert set(i.reads_registers()) == {1, 2, 3}
    assert i.writes_registers() == [0]
    assert i.reads_predicates() == [2]
    assert i.writes_predicates() == []


def test_dependency_sets_rz_excluded():
    i = parse_line("IADD3 R0, RZ, 0x1, RZ;")
    assert i.reads_registers() == []


def test_dependency_sets_wide_load():
    i = parse_line("LDG.E.128 R8, [R2 + 0x10];")
    assert set(i.reads_registers()) == {2}
    assert i.writes_registers() == [8, 9, 10, 11]


def test_dependency_sets_store_vector():
    i = parse_line("STG.E.64 [R2], R6;")
    assert set(i.reads_registers()) == {2, 6, 7}
    assert i.writes_registers() == []


def test_dependency_sets_isetp():
    i = parse_line("ISETP.LT.AND P3, PT, R1, R2, !P4;")
    assert i.writes_predicates() == [3]
    assert set(i.reads_predicates()) == {4}
    assert set(i.reads_registers()) == {1, 2}


def test_dependency_sets_imad_wide():
    i = parse_line("IMAD.WIDE.U32 R10, R1, 0x4, RZ;")
    assert i.writes_registers() == [10, 11]


def test_text_shows_guard_and_flags():
    text = parse_line("@!P1 LDG.E.128 R8, [R2 - 0x20];").text(with_control=False)
    assert text == "@!P1 LDG.128.E R8, [R2 - 0x20];"


def test_text_without_control():
    text = parse_line("[B0-----:R-:W2:-:S04] FADD R0, R1, R2;").text(
        with_control=False
    )
    assert not text.startswith("[")
