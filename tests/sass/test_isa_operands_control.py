"""ISA table integrity, operand parsing, control-code encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import EncodingError, SassSyntaxError
from repro.sass import (
    NO_BARRIER,
    OPCODES,
    Const,
    ControlCode,
    Imm,
    Mem,
    Pred,
    Reg,
    parse_control,
    parse_operand,
    spec_for,
    width_of,
)
from repro.sass.isa import FORM_CONSTANT, FORM_IMMEDIATE


# ---------------------------------------------------------------------------
# ISA table
# ---------------------------------------------------------------------------
def test_opcodes_fit_12_bits_with_forms():
    for spec in OPCODES.values():
        assert 0 < spec.opcode + FORM_CONSTANT < (1 << 12), spec.name


def test_no_opcode_collisions_across_forms():
    """Base, +imm and +const opcodes must all be distinct."""
    seen = {}
    for spec in OPCODES.values():
        for form in (0, FORM_IMMEDIATE, FORM_CONSTANT):
            code = spec.opcode + form
            assert code not in seen, f"{spec.name} collides with {seen.get(code)}"
            seen[code] = spec.name


def test_paper_documented_opcodes():
    """§5.1.1's examples: FFMA 0x223, FADD 0x221, LDG 0x381, LDS 0x984."""
    assert OPCODES["FFMA"].opcode == 0x223
    assert OPCODES["FADD"].opcode == 0x221
    assert OPCODES["LDG"].opcode == 0x381
    assert OPCODES["LDS"].opcode == 0x984


def test_flag_lists_fit_flag_field():
    for spec in OPCODES.values():
        assert len(spec.valid_flags) <= 24, spec.name


def test_variable_latency_ops_declare_none():
    for name in ("LDG", "LDS", "STS", "STG", "S2R", "MUFU"):
        assert OPCODES[name].latency is None


def test_spec_for_unknown():
    with pytest.raises(KeyError):
        spec_for("FROB")


def test_width_of():
    assert width_of(("E", "128")) == 16
    assert width_of(("64",)) == 8
    assert width_of(("E",)) == 4


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------
def test_parse_register_forms():
    assert parse_operand("R0") == Reg(0)
    assert parse_operand("R254") == Reg(254)
    assert parse_operand("RZ").is_rz
    assert parse_operand("R5.reuse") == Reg(5, reuse=True)
    assert parse_operand("-R7") == Reg(7, negated=True)


def test_register_bank_parity():
    assert Reg(64).bank == 0 and Reg(65).bank == 1


def test_parse_predicates():
    assert parse_operand("P3") == Pred(3)
    assert parse_operand("!P0") == Pred(0, negated=True)
    assert parse_operand("PT").is_pt
    assert Pred(3, negated=True).nibble == 0xB
    assert Pred.from_nibble(0xB) == Pred(3, negated=True)


def test_parse_immediates():
    assert parse_operand("0x10") == Imm(0x10)
    assert parse_operand("-1").bits == 0xFFFFFFFF
    assert parse_operand("1.0") == Imm.from_float(1.0)
    assert Imm.from_float(1.0).bits == 0x3F800000
    assert Imm.from_float(-2.5).as_float() == -2.5


def test_parse_constant_memory():
    c = parse_operand("c[0x0][0x160]")
    assert c == Const(0, 0x160)


def test_parse_memory_reference():
    m = parse_operand("[R2 + 0x100]")
    assert m == Mem(Reg(2), 0x100)
    assert parse_operand("[R4]") == Mem(Reg(4), 0)
    assert parse_operand("[RZ + 0x20]").base.is_rz
    assert parse_operand("[R2 - 0x10]").offset == -0x10


def test_operand_text_roundtrip():
    for text in ("R0", "RZ", "R5.reuse", "-R7", "!P2", "PT", "c[0x0][0x168]",
                 "[R2 + 0x100]", "[R4]"):
        assert parse_operand(text).text().replace(" ", "") == text.replace(" ", "")


def test_bad_operands():
    with pytest.raises(SassSyntaxError):
        parse_operand("Q5")
    with pytest.raises(EncodingError):
        parse_operand("R300")
    with pytest.raises(SassSyntaxError):
        parse_operand("P9")


def test_const_validation():
    with pytest.raises(EncodingError):
        Const(0, 0x161)  # unaligned
    with pytest.raises(EncodingError):
        Const(99, 0)


def test_mem_offset_range():
    with pytest.raises(EncodingError):
        Mem(Reg(0), 1 << 24)


# ---------------------------------------------------------------------------
# Control codes
# ---------------------------------------------------------------------------
@given(
    stall=st.integers(0, 15),
    yld=st.booleans(),
    wbar=st.sampled_from([0, 1, 5, NO_BARRIER]),
    rbar=st.sampled_from([0, 3, NO_BARRIER]),
    wait=st.integers(0, 63),
    reuse=st.integers(0, 15),
)
@settings(max_examples=80, deadline=None)
def test_control_encode_decode_roundtrip(stall, yld, wbar, rbar, wait, reuse):
    code = ControlCode(stall, yld, wbar, rbar, wait, reuse)
    assert ControlCode.decode(code.encode()) == code


def test_control_text_roundtrip():
    code = ControlCode(stall=4, yield_flag=True, write_bar=2, read_bar=0,
                       wait_mask=0b100101)
    assert parse_control(code.text()) == ControlCode(
        stall=4, yield_flag=True, write_bar=2, read_bar=0, wait_mask=0b100101
    )


def test_control_yield_bit_inverted_in_hardware():
    """Hardware bit 1 = 'stay'; our yield_flag=True encodes bit 0."""
    stay = ControlCode(yield_flag=False).encode()
    switch = ControlCode(yield_flag=True).encode()
    assert (stay >> 4) & 1 == 1
    assert (switch >> 4) & 1 == 0


def test_control_helpers():
    c = ControlCode()
    assert c.with_wait(3).waits_on(3)
    assert c.with_stall(7).stall == 7
    assert c.with_yield().yield_flag
    assert c.with_reuse_slot(1).reuse == 2


def test_control_validation():
    with pytest.raises(EncodingError):
        ControlCode(stall=16)
    with pytest.raises(EncodingError):
        ControlCode(write_bar=6)
    with pytest.raises(EncodingError):
        ControlCode(wait_mask=64)


def test_parse_control_rejects_garbage():
    with pytest.raises(SassSyntaxError):
        parse_control("[B:R-:W-:-:S01]")
    with pytest.raises(SassSyntaxError):
        parse_control("[B--1---:R-:W-:-:S01]")
    with pytest.raises(SassSyntaxError):
        parse_control("[B-2----:R-:W-:-:S01]")  # slot 1 must hold '1'
