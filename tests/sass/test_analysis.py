"""Unit tests for the SASS static analyzer: one crafted violation per rule."""

import json

import numpy as np
import pytest

from repro.sass import parse_program, schedule, validate_control
from repro.sass.analysis import (
    ControlCodePass,
    Diagnostic,
    LivenessPass,
    RegisterBankPass,
    Severity,
    SharedMemoryPass,
    count_by_severity,
    errors,
    lint_instructions,
    max_severity,
    render_json,
    render_text,
)
from repro.sass.analysis.smem import warp_access_cycles
from repro.sass.operands import Pred
from repro.sass.preprocess import KernelMeta


def _prog(src):
    return parse_program(src).instructions


def _rules(diags):
    return [d.rule for d in diags]


def _run(pass_, src, meta=None):
    return lint_instructions(_prog(src), meta=meta, passes=[pass_])


# ---------------------------------------------------------------------------
# Diagnostic framework
# ---------------------------------------------------------------------------


def test_severity_ordering():
    assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank
    diags = [
        Diagnostic("X1", Severity.INFO, 0, "MOV", "a"),
        Diagnostic("X2", Severity.ERROR, 1, "MOV", "b"),
    ]
    assert max_severity(diags) is Severity.ERROR
    assert max_severity([]) is None
    assert [d.rule for d in errors(diags)] == ["X2"]
    assert count_by_severity(diags) == {"info": 1, "warning": 0, "error": 1}


def test_diagnostic_text_and_json():
    d = Diagnostic("RB001", Severity.WARNING, 12, "FFMA", "msg", hint="fix")
    assert d.text() == "instr 12 (FFMA): warning RB001: msg [hint: fix]"
    assert Diagnostic("LV001", Severity.INFO, -1, "", "m").text().startswith(
        "program:"
    )
    payload = json.loads(render_json([d], kernel_name="k"))
    assert payload["kernel"] == "k"
    assert payload["summary"]["warning"] == 1
    assert payload["diagnostics"][0]["rule"] == "RB001"
    assert "1 warning(s)" in render_text([d], kernel_name="k")


# ---------------------------------------------------------------------------
# Register-bank pass (RB001-RB004)
# ---------------------------------------------------------------------------


def test_rb001_same_bank_sources_warn():
    # R1, R3, R5 all live in the odd bank: the Fig. 4 conflict.
    diags = _run(RegisterBankPass(), "FFMA R0, R1, R3, R5;\nEXIT;\n")
    assert _rules(diags) == ["RB001"]
    assert diags[0].severity is Severity.WARNING
    assert "odd" in diags[0].message


def test_rb001_silenced_by_reuse():
    src = (
        "FFMA R0, R1.reuse, R3, R5;\n"
        "FFMA R2, R1, R7, R9;\n"  # slot 0 R1 served by the cache: 2 reads
        "EXIT;\n"
    )
    diags = _run(RegisterBankPass(), src)
    assert "RB001" not in [d.rule for d in diags if d.pos == 1]


def test_rb001_mixed_banks_clean():
    diags = _run(RegisterBankPass(), "FFMA R0, R1, R2, R5;\nEXIT;\n")
    assert diags == []


def test_rb002_stale_reuse_is_error():
    # The load overwrites R2 between the latch and its consumer: hardware
    # serves the stale latched value.
    src = (
        "FFMA R0, R8, R2.reuse, R4;\n"
        "LDG.E R2, [R6];\n"
        "FFMA R1, R8, R2.reuse, R5;\n"
        "EXIT;\n"
    )
    diags = _run(RegisterBankPass(), src)
    assert "RB002" in _rules(diags)
    (rb002,) = [d for d in diags if d.rule == "RB002"]
    assert rb002.severity is Severity.ERROR
    assert rb002.pos == 2


def test_rb003_dead_reuse_flag():
    src = (
        "FFMA R0, R8, R3.reuse, R4;\n"
        "FFMA R1, R8, R7, R5;\n"  # slot 1 reads R7, not R3: latch wasted
        "EXIT;\n"
    )
    diags = _run(RegisterBankPass(), src)
    assert _rules(diags) == ["RB003"]
    assert diags[0].pos == 0


def test_rb003_also_fires_at_end_of_program():
    diags = _run(RegisterBankPass(), "FFMA R0, R8, R3.reuse, R4;\nEXIT;\n")
    assert "RB003" not in _rules(diags)  # EXIT resets without judging

    diags = _run(RegisterBankPass(), "FFMA R0, R8, R3.reuse, R4;\n")
    assert _rules(diags) == ["RB003"]


def test_rb004_reuse_with_yield():
    src = (
        "[B------:R-:W-:Y:S01] FFMA R0, R8, R2.reuse, R4;\n"
        "FFMA R1, R8, R2, R5;\n"
        "EXIT;\n"
    )
    diags = _run(RegisterBankPass(), src)
    assert "RB004" in _rules(diags)


def test_reuse_across_memory_op_still_serves():
    # The cache is only replaced by register-file instructions; an LDS in
    # between passes it through (mirrors the simulator).
    src = (
        "FFMA R0, R8, R3.reuse, R4;\n"
        "LDS R10, [R12];\n"
        "FFMA R1, R8, R3, R5;\n"
        "EXIT;\n"
    )
    diags = _run(RegisterBankPass(), src)
    assert diags == []


# ---------------------------------------------------------------------------
# Shared-memory pass (SM001-SM004)
# ---------------------------------------------------------------------------


def test_sm001_strided_lds_conflict():
    # addr = tid * 128: every lane hits bank 0 -> 32-way conflict.
    src = (
        "S2R R0, SR_TID.X;\n"
        "SHF.L R1, R0, 0x7, RZ;\n"
        "LDS R2, [R1];\n"
        "EXIT;\n"
    )
    diags = _run(SharedMemoryPass(), src)
    assert _rules(diags) == ["SM001"]
    assert diags[0].severity is Severity.WARNING
    assert "32-way" in diags[0].message


def test_sm001_unit_stride_clean():
    src = (
        "S2R R0, SR_TID.X;\n"
        "SHF.L R1, R0, 0x2, RZ;\n"  # addr = tid*4: one bank per lane
        "LDS R2, [R1];\n"
        "STS [R1], R2;\n"
        "EXIT;\n"
    )
    assert _run(SharedMemoryPass(), src) == []


def test_sm002_misaligned_vector_access():
    src = (
        "MOV R1, 0x4;\n"
        "LDS.128 R4, [R1];\n"  # 4 % 16 != 0
        "EXIT;\n"
    )
    diags = _run(SharedMemoryPass(), src)
    assert "SM002" in _rules(diags)
    (sm002,) = [d for d in diags if d.rule == "SM002"]
    assert sm002.severity is Severity.ERROR


def test_sm003_out_of_bounds_vs_smem_directive():
    meta = KernelMeta(name="t", smem_bytes=64)
    src = (
        "MOV R1, 0x40;\n"
        "LDS R2, [R1];\n"  # 0x40 + 4 > 64
        "EXIT;\n"
    )
    diags = _run(SharedMemoryPass(), src, meta=meta)
    assert "SM003" in _rules(diags)
    assert [d for d in diags if d.rule == "SM003"][0].severity is Severity.ERROR
    # Without metadata the bounds check degrades gracefully.
    assert "SM003" not in _rules(_run(SharedMemoryPass(), src))


def test_sm004_unknown_address_reported_as_info():
    src = (
        "[B------:R-:W0:-:S01] LDG.E R1, [R2];\n"
        "[B0-----:R-:W-:-:S04] LDS R3, [R1];\n"  # address is memory contents
        "EXIT;\n"
    )
    diags = _run(SharedMemoryPass(), src)
    assert _rules(diags) == ["SM004"]
    assert diags[0].severity is Severity.INFO


def test_guarded_lanes_excluded():
    # Only lane 0 of each warp (tid % 32 == 0) executes the strided load:
    # a single active lane cannot conflict.
    src = (
        "S2R R0, SR_TID.X;\n"
        "LOP3.AND R3, R0, 0x1f, RZ;\n"
        "ISETP.EQ.AND P0, PT, R3, RZ, PT;\n"
        "SHF.L R1, R0, 0x7, RZ;\n"
        "@P0 LDS R2, [R1];\n"
        "EXIT;\n"
    )
    assert _run(SharedMemoryPass(), src) == []


def test_static_bank_model_matches_simulator():
    """Differential: the pass's local mirror agrees with the dynamic model."""
    from repro.gpusim.memory import bank_conflict_report

    rng = np.random.default_rng(7)
    for width in (4, 8, 16):
        for _ in range(25):
            addrs = (
                rng.integers(0, 2048 // width, size=32) * width
            ).astype(np.int64)
            mask = rng.random(32) < 0.8
            report = bank_conflict_report(addrs, width, mask)
            phases, cycles, _ = warp_access_cycles(addrs, width, mask)
            assert (phases, cycles) == (report.phases, report.cycles)


# ---------------------------------------------------------------------------
# Liveness pass (LV001-LV003)
# ---------------------------------------------------------------------------


def test_lv001_reports_peak():
    diags = _run(LivenessPass(), "MOV R0, 0x1;\nIADD3 R1, R0, R2, R3;\nEXIT;\n")
    assert _rules(diags) == ["LV001"]
    assert "live registers" in diags[0].message


def test_lv002_budget_overflow():
    writes = "".join(f"MOV R{i}, 0x1;\n" for i in range(254))
    reads = "".join(f"IADD3 R0, R0, R{i}, RZ;\n" for i in range(1, 254))
    diags = _run(LivenessPass(), writes + reads + "EXIT;\n")
    assert "LV002" in _rules(diags)
    (lv002,) = [d for d in diags if d.rule == "LV002"]
    assert lv002.severity is Severity.ERROR
    assert "254" in lv002.message


def test_lv003_exceeds_declared_registers():
    meta = KernelMeta(name="t", registers=4)
    src = (
        "".join(f"MOV R{i}, 0x1;\n" for i in range(8))
        + "".join(f"IADD3 R0, R0, R{i}, RZ;\n" for i in range(1, 8))
        + "EXIT;\n"
    )
    diags = _run(LivenessPass(), src, meta=meta)
    assert "LV003" in _rules(diags)


def test_predicated_write_does_not_kill():
    # @P0 MOV may not retire, so R1's prior value stays live across it.
    src = (
        "MOV R1, 0x1;\n"
        "@P0 MOV R1, 0x2;\n"
        "STS [R2], R1;\n"
        "EXIT;\n"
    )
    from repro.sass.analysis.liveness import compute_live_in

    live_in = compute_live_in(_prog(src))
    assert live_in[1] & (1 << 1)  # R1 live into the predicated write


# ---------------------------------------------------------------------------
# Control-code pass (CTRL001-CTRL003) and the validate_control wrapper
# ---------------------------------------------------------------------------


def test_ctrl001_missing_wait():
    src = (
        "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
        "IADD3 R3, R0, 0x1, RZ;\nEXIT;\n"
    )
    diags = _run(ControlCodePass(), src)
    assert "CTRL001" in _rules(diags)
    assert all(d.severity is Severity.ERROR for d in diags)


def test_ctrl002_unbarriered_producer():
    src = "LDG.E R0, [R2];\nIADD3 R3, R0, 0x1, RZ;\nEXIT;\n"
    diags = _run(ControlCodePass(), src)
    assert "CTRL002" in _rules(diags)


def test_ctrl003_underslept_fixed_latency():
    diags = _run(ControlCodePass(), "MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    assert "CTRL003" in _rules(diags)


def test_ctrl_clean_after_schedule():
    instrs = _prog("LDG.E R0, [R2];\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    schedule(instrs)
    assert lint_instructions(instrs, passes=[ControlCodePass()]) == []


def _pred_writing_load(src):
    """A variable-latency producer that also writes P0 (e.g. LDGSTS-style
    predicate result).  No current mnemonic parses with a predicate
    destination, so craft it on the Instruction directly."""
    instrs = _prog(src)
    instrs[0].dest_preds = (Pred(0),)
    return instrs


def test_ctrl001_tracks_predicates():
    # Regression: predicate writes from variable-latency producers used to
    # escape the guarded map entirely.
    instrs = _pred_writing_load(
        "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
        "@P0 MOV R5, 0x1;\n"  # reads P0 without waiting on barrier 0
        "[B0-----:R-:W-:-:S01] IADD3 R3, R0, 0x1, RZ;\n"
        "EXIT;\n"
    )
    diags = lint_instructions(instrs, passes=[ControlCodePass()])
    assert ["CTRL001"] == _rules(diags)
    assert "P0" in diags[0].message and diags[0].pos == 1


def test_ctrl002_tracks_predicates():
    instrs = _pred_writing_load(
        "LDG.E R0, [R2];\n"
        "[B0-----:R-:W-:-:S01] @P0 MOV R5, 0x1;\n"
        "EXIT;\n"
    )
    diags = lint_instructions(instrs, passes=[ControlCodePass()])
    assert any(d.rule == "CTRL002" and "P0" in d.message for d in diags)


def test_validate_control_wrapper_reports_predicates():
    instrs = _pred_writing_load(
        "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
        "@P0 MOV R5, 0x1;\n"
        "[B0-----:R-:W-:-:S01] IADD3 R3, R0, 0x1, RZ;\n"
        "EXIT;\n"
    )
    problems = validate_control(instrs)
    assert problems and "P0" in problems[0] and "barrier 0" in problems[0]


def test_validate_control_wrapper_keeps_legacy_format():
    problems = validate_control(
        _prog("MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    )
    assert problems == ["instr 1 (IADD3) reads/writes R0 3 cycles too early"]


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def test_default_passes_merge_sorted():
    src = "MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n"
    diags = lint_instructions(_prog(src))
    assert [d.rule for d in diags if d.rule.startswith("CTRL")]
    positions = [d.pos for d in diags]
    assert positions == sorted(positions)


def test_lint_empty_program():
    assert lint_instructions([]) == []


def test_unknown_warps_parameter():
    src = (
        "S2R R0, SR_TID.X;\n"
        "SHF.L R1, R0, 0x2, RZ;\n"
        "LDS R2, [R1];\n"
        "EXIT;\n"
    )
    # With 2 warps the evaluation covers tids 0..63; still clean.
    assert lint_instructions(_prog(src), num_warps=2, passes=[SharedMemoryPass()]) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
