"""Preprocessor (inline Python, aliases), assembler driver, cubin container."""

import pytest

from repro.common import AssemblerError, RegisterBudgetError, SassSyntaxError
from repro.sass import (
    assemble,
    preprocess,
    read_cubin,
    write_cubin,
)
from repro.sass.preprocess import PARAM_BASE


# ---------------------------------------------------------------------------
# Preprocessor
# ---------------------------------------------------------------------------
def test_directives_collect_metadata():
    pre = preprocess(
        ".kernel demo\n.registers 42\n.smem 1024\n"
        ".param 8 ptr\n.param 4 n\nEXIT;\n"
    )
    m = pre.meta
    assert m.name == "demo" and m.registers == 42 and m.smem_bytes == 1024
    assert m.params == [("ptr", PARAM_BASE, 8), ("n", PARAM_BASE + 8, 4)]
    assert m.param_offset("n") == PARAM_BASE + 8


def test_param_aliases_expand():
    pre = preprocess(".param 8 ptr\nMOV R0, param:ptr;\n")
    assert f"c[0x0][{PARAM_BASE:#x}]" in pre.source


def test_register_alias():
    pre = preprocess(".alias counter R7\nIADD3 counter, counter, -1, RZ;\n")
    assert "IADD3 R7, R7, -1, RZ;" in pre.source


def test_alias_does_not_touch_substrings():
    pre = preprocess(".alias idx R1\nMOV Ridx_not, idx;\n")
    assert "Ridx_not" in pre.source  # word-boundary only
    assert "MOV Ridx_not, R1;" in pre.source


def test_inline_expression():
    pre = preprocess("MOV R0, {{ 4 * 4 }};\n")
    assert "MOV R0, 16;" in pre.source


def test_inline_block_emits_lines():
    pre = preprocess(
        "{%\nfor i in range(3):\n    emit(f'MOV R{i}, 0x0;')\n%}\nEXIT;\n"
    )
    assert pre.source.splitlines()[:3] == ["MOV R0, 0x0;", "MOV R1, 0x0;", "MOV R2, 0x0;"]


def test_inline_block_sees_env():
    pre = preprocess("{%\nemit(f'MOV R0, {value};')\n%}\n", env={"value": 7})
    assert "MOV R0, 7;" in pre.source


def test_inline_block_state_persists():
    pre = preprocess("{%\nx = 5\n%}\nMOV R0, {{ x }};\n")
    assert "MOV R0, 5;" in pre.source


def test_block_aliases_applied_to_emitted_lines():
    pre = preprocess(".alias a R3\n{%\nemit('MOV a, 0x1;')\n%}\n")
    assert "MOV R3, 0x1;" in pre.source


def test_unterminated_block():
    with pytest.raises(SassSyntaxError):
        preprocess("{%\nfor i in range(3):\n    pass\n")


def test_bad_inline_expression():
    with pytest.raises(SassSyntaxError):
        preprocess("MOV R0, {{ nope() }};\n")


def test_unknown_directive():
    with pytest.raises(SassSyntaxError):
        preprocess(".frobnicate 1\n")


# ---------------------------------------------------------------------------
# Assembler driver
# ---------------------------------------------------------------------------
def test_label_resolution_backward_and_forward():
    k = assemble(
        "MOV R0, 0x3;\nTOP:\nIADD3 R0, R0, -1, RZ;\n"
        "ISETP.NE.AND P0, PT, R0, RZ, PT;\n@P0 BRA TOP;\n@!P0 BRA END;\n"
        "NOP;\nEND:\nEXIT;\n",
        auto_schedule=True,
    )
    bra_back = k.instructions[3]
    bra_fwd = k.instructions[4]
    assert bra_back.target == -3
    assert bra_fwd.target == 1


def test_undefined_label():
    with pytest.raises(SassSyntaxError):
        assemble("BRA NOWHERE;\nEXIT;\n")


def test_register_budget_enforced():
    with pytest.raises(RegisterBudgetError):
        assemble("MOV R254, 0x0;\nEXIT;\n")


def test_register_budget_allows_252():
    k = assemble("MOV R252, 0x0;\nEXIT;\n")
    assert k.meta.registers == 253


def test_empty_program_rejected():
    with pytest.raises(AssemblerError):
        assemble("// nothing\n")


def test_strict_mode_catches_hazard():
    # MOV has 4-cycle latency; immediate consumer with stall 1 is a hazard.
    bad = "MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n"
    with pytest.raises(AssemblerError):
        assemble(bad, strict=True)
    # Auto-scheduling fixes it.
    k = assemble(bad, auto_schedule=True, strict=True)
    assert k.instructions[0].control.stall >= 4


def test_disassemble_reassembles_identically():
    src = (
        ".kernel demo\nMOV R0, 0x4;\nLOOP:\nIADD3 R0, R0, -1, RZ;\n"
        "ISETP.NE.AND P0, PT, R0, RZ, PT;\n@P0 BRA LOOP;\nEXIT;\n"
    )
    k1 = assemble(src, auto_schedule=True)
    listing = k1.disassemble()
    assert "LOOP:" in listing and "BRA LOOP" in listing
    k2 = assemble(listing)
    assert k2.text == k1.text


def test_inline_python_env_through_assemble():
    k = assemble(
        "{%\nfor i in range(n):\n    emit(f'MOV R{i}, 0x0;')\n%}\nEXIT;\n",
        env={"n": 4},
    )
    assert k.num_instructions == 5


# ---------------------------------------------------------------------------
# Cubin container
# ---------------------------------------------------------------------------
def _demo_kernel():
    return assemble(
        ".kernel saxpy\n.registers 12\n.smem 256\n.param 8 x\n.param 4 a\n"
        "MOV R0, param:a;\nEXIT;\n"
    )


def test_cubin_roundtrip():
    k = _demo_kernel()
    blob = write_cubin(k)
    loaded = read_cubin(blob)
    assert loaded.meta.name == "saxpy"
    assert loaded.meta.smem_bytes == 256
    assert loaded.meta.params[0][0] == "x"
    assert loaded.text == k.text
    assert [i.text() for i in loaded.instructions()] == [
        i.text() for i in k.instructions
    ]


def test_cubin_is_elf():
    blob = write_cubin(_demo_kernel())
    assert blob[:4] == b"\x7fELF"
    assert blob[4] == 2 and blob[5] == 1  # 64-bit little endian
    import struct

    e_machine = struct.unpack_from("<H", blob, 18)[0]
    assert e_machine == 190  # EM_CUDA


def test_read_cubin_rejects_garbage():
    with pytest.raises(AssemblerError):
        read_cubin(b"not an elf at all" + b"\x00" * 64)


def test_read_cubin_rejects_wrong_machine():
    blob = bytearray(write_cubin(_demo_kernel()))
    blob[18] = 3  # EM_386
    with pytest.raises(AssemblerError):
        read_cubin(bytes(blob))
