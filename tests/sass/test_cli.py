"""The `python -m repro.sass` command-line interface."""

import pytest

from repro.sass.__main__ import main

SRC = """
.kernel demo
.registers 8
.param 8 ptr
.param 4 n
MOV R0, param:n;
LOOP:
IADD3 R0, R0, -1, RZ;
ISETP.NE.AND P0, PT, R0, RZ, PT;
@P0 BRA LOOP;
{%
for i in range(width):
    emit(f"MOV R{i + 1}, 0x0;")
%}
EXIT;
"""


@pytest.fixture
def cubin_path(tmp_path):
    src = tmp_path / "demo.sass"
    src.write_text(SRC)
    out = tmp_path / "demo.cubin"
    rc = main(["as", str(src), "-o", str(out), "--schedule", "--strict",
               "-D", "width=3"])
    assert rc == 0
    return out


def test_as_creates_cubin(cubin_path, capsys):
    assert cubin_path.exists()
    assert cubin_path.read_bytes()[:4] == b"\x7fELF"


def test_as_default_output_name(tmp_path):
    src = tmp_path / "thing.sass"
    src.write_text(".kernel t\nEXIT;\n")
    assert main(["as", str(src)]) == 0
    assert (tmp_path / "thing.cubin").exists()


def test_dis_lists_instructions(cubin_path, capsys):
    assert main(["dis", str(cubin_path)]) == 0
    out = capsys.readouterr().out
    assert "LOOP:" in out
    assert "BRA LOOP" in out
    assert "IADD3 R0" in out


def test_dis_with_addresses(cubin_path, capsys):
    main(["dis", str(cubin_path), "-a"])
    out = capsys.readouterr().out
    assert "/*0000*/" in out and "/*0010*/" in out


def test_info_shows_metadata(cubin_path, capsys):
    assert main(["info", str(cubin_path)]) == 0
    out = capsys.readouterr().out
    assert "kernel:     demo" in out
    assert "c[0x0][0x160]  ptr" in out
    assert "LOOP" in out


def test_define_parsing_rejects_garbage(tmp_path):
    src = tmp_path / "x.sass"
    src.write_text("EXIT;\n")
    with pytest.raises(SystemExit):
        main(["as", str(src), "-D", "broken"])


def test_inline_python_define_used(cubin_path):
    """width=3 expanded three extra MOVs: 4 + 3 + 1 instructions total."""
    from repro.sass import read_cubin

    loaded = read_cubin(cubin_path.read_bytes())
    assert len(loaded.text) // 16 == 8


def test_lint_clean_source(tmp_path, capsys):
    src = tmp_path / "clean.sass"
    src.write_text(SRC)
    rc = main(["lint", str(src), "--schedule", "-D", "width=3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 error(s)" in out


def test_lint_hazardous_source_fails(tmp_path, capsys):
    src = tmp_path / "bad.sass"
    src.write_text(
        ".kernel bad\n.registers 8\n"
        "LDG.E R0, [R2];\nIADD3 R3, R0, 0x1, RZ;\nEXIT;\n"
    )
    rc = main(["lint", str(src)])  # no --schedule: hazards stay
    out = capsys.readouterr().out
    assert rc == 1
    assert "CTRL002" in out


def test_lint_json_output(tmp_path, capsys):
    import json

    src = tmp_path / "clean.sass"
    src.write_text(SRC)
    rc = main(["lint", str(src), "--schedule", "--json", "-D", "width=3"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["kernel"] == "demo"
    assert payload["summary"]["error"] == 0
    assert all("rule" in d for d in payload["diagnostics"])


def test_lint_cubin_input(cubin_path, capsys):
    rc = main(["lint", str(cubin_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "demo:" in out
