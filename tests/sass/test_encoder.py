"""128-bit encode/decode: round trips, golden values, field placement."""

import pytest

from repro.common import EncodingError
from repro.sass import (
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    parse_line,
)

ROUNDTRIP_CASES = [
    "FFMA R0, R1, R2, R3;",
    "FFMA R0, R1, 1.5, R3;",
    "FFMA R0, R1, c[0x0][0x168], R3;",
    "[B------:R-:W-:-:S04] FFMA R0, R64, R80.reuse, R0;",
    "FADD R10, R11, -R12;",
    "FMUL R1, R2, R3;",
    "FMNMX R1, R2, R3, RZ;",
    "MUFU.RCP R4, R5;",
    "IADD3 R1, R2, 0xffffffff, RZ;",
    "IMAD R1, R2, 0x38, R3;",
    "IMAD.WIDE.U32 R4, R2, 0x100, RZ;",
    "LOP3.AND R1, R2, 0x1f, RZ;",
    "LOP3.OR R1, R2, R3, RZ;",
    "SHF.L.U32 R1, R2, 0x4, RZ;",
    "SHF.R.U32 R1, R2, 0x5, R3;",
    "MOV R1, 0xdeadbeef;",
    "MOV R1, c[0x0][0x160];",
    "CS2R.32 R2, ;".replace(", ;", ";"),
    "POPC R1, R2;",
    "ISETP.LT.U32.AND P0, PT, R3, 0x20, PT;",
    "ISETP.NE.OR P2, PT, R0, RZ, !P1;",
    "P2R R5, 0xf;",
    "R2P R5, 0x70;",
    "[B--2---:R-:W1:-:S01] LDG.E R7, [R2 + 0x100];",
    "LDG.E.128 R16, [R4 - 0x20];",
    "STG.E [R2], R9;",
    "[B------:R3:W-:-:S01] STS.128 [R1 + 0x40], R8;",
    "LDS.64 R6, [R3 + 0x8];",
    "S2R R0, SR_TID.X;",
    "S2R R9, SR_CTAID.Y;",
    "@!P6 EXIT;",
    "BAR.SYNC;",
    "NOP;",
    "[B0----5:R-:W-:Y:S15] @P1 FFMA R0, R1, R2, R3;",
]


@pytest.mark.parametrize("text", ROUNDTRIP_CASES)
def test_text_encode_decode_text_roundtrip(text):
    instr = parse_line(text)
    word = encode_instruction(instr)
    back = decode_instruction(word)
    assert back.text() == instr.text()


def test_bra_roundtrip_via_resolved_target():
    instr = parse_line("@P1 BRA LOOP;")
    instr.target = -5
    back = decode_instruction(encode_instruction(instr))
    assert back.target == -5 and back.guard.index == 1


def test_bra_unresolved_rejected():
    with pytest.raises(EncodingError):
        encode_instruction(parse_line("BRA SOMEWHERE;"))


def test_word_is_128_bits():
    word = encode_instruction(parse_line("FFMA R0, R1, R2, R3;"))
    assert word < (1 << 128)
    assert word.to_bytes(16, "little")


def test_golden_field_placement_ffma():
    """Pin the Fig. 6 field layout: opcode [11:0], guard [15:12],
    rd [23:16], rs0 [31:24], rs1 [39:32], rs2 [71:64]."""
    word = encode_instruction(parse_line("@!P1 FFMA R10, R20, R30, R40;"))
    assert word & 0xFFF == 0x223
    assert (word >> 12) & 0xF == 0x9  # P1 negated
    assert (word >> 16) & 0xFF == 10
    assert (word >> 24) & 0xFF == 20
    assert (word >> 32) & 0xFF == 30
    assert (word >> 64) & 0xFF == 40


def test_golden_immediate_form_opcode():
    word = encode_instruction(parse_line("FFMA R0, R1, 1.0, R2;"))
    assert word & 0xFFF == 0x423  # base + 0x200
    assert (word >> 32) & 0xFFFFFFFF == 0x3F800000


def test_golden_constant_form_opcode():
    word = encode_instruction(parse_line("FFMA R0, R1, c[0x0][0x160], R2;"))
    assert word & 0xFFF == 0x623
    assert (word >> 32) & 0xFFFF == 0x160 // 4


def test_golden_control_bits():
    instr = parse_line("[B------:R-:W-:-:S01] FFMA R0, R1, R2, R3;")
    word = encode_instruction(instr)
    # stall=1 at [108:105]; "stay" yield bit set at [109].
    assert (word >> 105) & 0xF == 1
    assert (word >> 109) & 1 == 1


def test_negation_bits_at_96():
    word = encode_instruction(parse_line("FADD R0, R1, -R2;"))
    assert (word >> 97) & 1 == 1  # slot 1
    assert (word >> 96) & 1 == 0


def test_program_roundtrip():
    src = ["MOV R0, 0x1;", "IADD3 R0, R0, 0x2, RZ;", "EXIT;"]
    instrs = [parse_line(s) for s in src]
    blob = encode_program(instrs)
    assert len(blob) == 3 * INSTRUCTION_BYTES
    back = decode_program(blob)
    assert [i.text() for i in back] == [i.text() for i in instrs]


def test_decode_program_rejects_ragged():
    with pytest.raises(EncodingError):
        decode_program(b"\x00" * 17)


def test_decode_unknown_opcode():
    with pytest.raises(EncodingError):
        decode_instruction(0xFFF)
