"""SASS text parser: every instruction shape plus error reporting."""

import pytest

from repro.common import SassSyntaxError
from repro.sass import Imm, Mem, Pred, Reg, parse_line, parse_program


def test_ffma_full():
    i = parse_line("[B0-----:R-:W-:Y:S02] @!P1 FFMA.FTZ R0, R1, R2.reuse, R3;")
    assert i.name == "FFMA" and i.flags == ("FTZ",)
    assert i.guard == Pred(1, negated=True)
    assert i.dest == Reg(0)
    assert i.srcs == (Reg(1), Reg(2, reuse=True), Reg(3))
    assert i.control.stall == 2 and i.control.yield_flag
    assert i.control.waits_on(0)
    assert i.control.reuse == 0b010  # slot 1


def test_ffma_with_constant_and_imm():
    i = parse_line("FFMA R0, R1, c[0x0][0x160], R3;")
    assert i.srcs[1].offset == 0x160
    i = parse_line("FFMA R0, R1, 1.5, R3;")
    assert isinstance(i.srcs[1], Imm)


def test_fadd_negated_source():
    i = parse_line("FADD R0, R1, -R2;")
    assert i.srcs[1].negated


def test_memory_instructions():
    i = parse_line("LDG.E.128 R16, [R2 + 0x100];")
    assert i.dest == Reg(16) and i.mem == Mem(Reg(2), 0x100)
    assert i.flags == ("128", "E")  # canonical order
    i = parse_line("STS.128 [R1], R8;")
    assert i.mem == Mem(Reg(1), 0) and i.srcs == (Reg(8),)
    i = parse_line("LDS R4, [R1 + 0x40];")
    assert i.spec.mem_space == "shared"


def test_vector_alignment_enforced():
    with pytest.raises(SassSyntaxError):
        parse_line("LDS.128 R5, [R1];")  # R5 not 4-aligned (§4.3 req. (i))
    with pytest.raises(SassSyntaxError):
        parse_line("LDG.E.64 R3, [R2];")
    with pytest.raises(SassSyntaxError):
        parse_line("STS.128 [R1], R6;")


def test_isetp():
    i = parse_line("ISETP.LT.U32.AND P0, PT, R3, 0x20, PT;")
    assert i.dest_preds[0] == Pred(0)
    assert i.dest_preds[1].is_pt
    assert i.src_pred.is_pt
    assert set(i.flags) == {"LT", "U32", "AND"}


def test_isetp_negated_combine():
    i = parse_line("ISETP.EQ.OR P1, PT, R0, RZ, !P2;")
    assert i.src_pred == Pred(2, negated=True)


def test_p2r_r2p():
    i = parse_line("P2R R5, 0xf;")
    assert i.dest == Reg(5) and i.srcs == (Imm(0xF),)
    i = parse_line("R2P R5, 0x70;")
    assert i.dest is None and i.srcs == (Reg(5), Imm(0x70))
    assert set(i.writes_predicates()) == {4, 5, 6}


def test_s2r():
    i = parse_line("S2R R0, SR_CTAID.Y;")
    assert i.dest == Reg(0) and "SR_CTAID.Y" in i.flags


def test_s2r_bad_sr():
    with pytest.raises(SassSyntaxError):
        parse_line("S2R R0, SR_NOPE;")


def test_bra_and_bar_and_exit():
    i = parse_line("@P5 BRA LOOP;")
    assert i.target == "LOOP" and i.guard == Pred(5)
    assert parse_line("BAR.SYNC;").name == "BAR"
    assert parse_line("EXIT;").name == "EXIT"
    assert parse_line("NOP;").name == "NOP"


def test_imad_wide():
    i = parse_line("IMAD.WIDE.U32 R4, R0, 0x100, RZ;")
    assert i.writes_registers() == [4, 5]


def test_shf_mov_lop3():
    assert parse_line("SHF.R.U32 R1, R0, 0x5, RZ;").name == "SHF"
    i = parse_line("MOV R1, c[0x0][0x164];")
    assert i.srcs[0].offset == 0x164
    assert parse_line("LOP3.AND R1, R0, 0x1f, RZ;").flags == ("AND",)


def test_comments_and_blank_lines():
    prog = parse_program(
        """
        // a comment
        MOV R0, 0x1;  // trailing
        # hash comment
        EXIT;
        """
    )
    assert len(prog.instructions) == 2


def test_labels_collected():
    prog = parse_program("MOV R0, 0x1;\nTOP:\nIADD3 R0, R0, -1, RZ;\n@P0 BRA TOP;\n")
    assert prog.labels == {"TOP": 1}


def test_duplicate_label_rejected():
    with pytest.raises(SassSyntaxError):
        parse_program("A:\nNOP;\nA:\nEXIT;\n")


@pytest.mark.parametrize(
    "bad",
    [
        "FFMA R0, R1, R2, R3",  # missing ;
        "FFMA R0, R1, R2;",  # wrong arity
        "FFMA R0, 0x1, R2, R3;",  # imm outside B slot
        "BLORP R0;",  # unknown mnemonic
        "@Q1 MOV R0, R1;",  # bad guard
        "FFMA.BOGUS R0, R1, R2, R3;",  # invalid flag
        "LDG.E R0, R1;",  # load needs [..]
        "EXIT R0;",  # operands on EXIT
        "BRA A, B;",  # too many operands
        "ISETP.LT.AND P0, PT, R1, R2;",  # missing combine pred
        "P2R R5, R3;",  # mask must be immediate
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(SassSyntaxError):
        parse_line(bad, 42)


def test_error_carries_line_number():
    with pytest.raises(SassSyntaxError) as exc:
        parse_line("BLORP;", 42)
    assert "42" in str(exc.value)


def test_reads_writes_sets():
    i = parse_line("STG.E.128 [R2 + 0x10], R8;")
    assert set(i.reads_registers()) == {2, 8, 9, 10, 11}
    i = parse_line("LDG.E.64 R4, [R6];")
    assert i.writes_registers() == [4, 5]
    i = parse_line("@!P3 FFMA R0, R1, R2, R3;")
    assert i.reads_predicates() == [3]
