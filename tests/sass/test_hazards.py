"""Hazard pass: stall insertion, barrier allocation, validation."""

from repro.sass import NO_BARRIER, parse_program, schedule, validate_control


def _prog(src):
    return parse_program(src).instructions


def test_fixed_latency_stall_inserted():
    instrs = _prog("MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    schedule(instrs)
    assert instrs[0].control.stall >= 4
    assert validate_control(instrs) == []


def test_independent_instructions_not_stalled():
    instrs = _prog("MOV R0, 0x1;\nMOV R1, 0x2;\nMOV R2, 0x3;\nEXIT;\n")
    schedule(instrs)
    assert all(i.control.stall == 1 for i in instrs[:3])


def test_stall_accumulates_over_distance():
    """A consumer 2 instructions later needs less extra stall."""
    instrs = _prog(
        "MOV R0, 0x1;\nMOV R5, 0x2;\nMOV R6, 0x3;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n"
    )
    schedule(instrs)
    # 3 default cycles already passed; one more needed.
    assert instrs[2].control.stall >= 2
    assert validate_control(instrs) == []


def test_variable_latency_gets_write_barrier():
    instrs = _prog("LDG.E R0, [R2];\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    schedule(instrs)
    assert instrs[0].control.write_bar != NO_BARRIER
    assert instrs[1].control.waits_on(instrs[0].control.write_bar)
    assert validate_control(instrs) == []


def test_store_gets_read_barrier_for_war():
    instrs = _prog("STS [R1], R8;\nMOV R8, 0x0;\nEXIT;\n")
    schedule(instrs)
    assert instrs[0].control.read_bar != NO_BARRIER
    assert instrs[1].control.waits_on(instrs[0].control.read_bar)


def test_barrier_shared_across_group():
    """Several loads may share one barrier; the union of regs is tracked."""
    instrs = _prog(
        "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
        "[B------:R-:W0:-:S01] LDG.E R1, [R2 + 0x4];\n"
        "[B0-----:R-:W-:-:S01] IADD3 R3, R0, R1, RZ;\nEXIT;\n"
    )
    assert validate_control(instrs) == []


def test_validator_flags_missing_wait():
    instrs = _prog(
        "[B------:R-:W0:-:S01] LDG.E R0, [R2];\n"
        "IADD3 R3, R0, 0x1, RZ;\nEXIT;\n"
    )
    problems = validate_control(instrs)
    assert problems and "R0" in problems[0]


def test_validator_flags_unbarriered_load():
    instrs = _prog("LDG.E R0, [R2];\nIADD3 R3, R0, 0x1, RZ;\nEXIT;\n")
    assert validate_control(instrs)


def test_validator_flags_underslept_fixed_latency():
    instrs = _prog("MOV R0, 0x1;\nIADD3 R1, R0, 0x1, RZ;\nEXIT;\n")
    problems = validate_control(instrs)
    assert problems and "too early" in problems[0]


def test_bar_needs_no_scoreboard_waits():
    """CTA barriers order shared memory by MIO issue order: the hazard
    pass must not make BAR wait on memory scoreboards (that stall is
    real and unnecessary — see the Winograd generator's main loop)."""
    instrs = _prog(
        "STS [R1], R8;\n"
        "LDG.E R4, [R2];\n"
        "BAR.SYNC;\n"
        "[B-1----:R-:W-:-:S01] IADD3 R5, R4, 0x1, RZ;\nEXIT;\n"
    )
    schedule(instrs)
    bar = instrs[2]
    assert not bar.control.waits_on(instrs[0].control.read_bar)
    assert not bar.control.waits_on(instrs[1].control.write_bar)


def test_loop_carried_hazard_second_pass():
    """A value produced at the loop tail and read at the head is covered."""
    instrs = _prog(
        "MOV R0, 0x4;\n"
        "IADD3 R1, R0, 0x1, RZ;\n"
        "@P0 BRA TOP;\nEXIT;\n"
    )
    # Mark instruction 1 as loop start manually.
    schedule(instrs, loop_start=1)
    assert validate_control(instrs) == []


def test_schedule_preserves_explicit_controls():
    instrs = _prog(
        "[B------:R-:W3:-:S01] LDG.E R0, [R2];\n"
        "[B---3--:R-:W-:-:S01] IADD3 R1, R0, 0x1, RZ;\nEXIT;\n"
    )
    schedule(instrs)
    assert instrs[0].control.write_bar == 3  # untouched
    assert validate_control(instrs) == []
