"""Property-based fuzzing of the 128-bit encoder/decoder.

Hypothesis builds random (but structurally valid) instructions across
the operand shapes and control-code space; every one must survive
encode → decode → re-encode bit-identically, and its canonical text must
reparse to the same bits.  This pins the Fig. 6 field layout far more
densely than the hand-written golden tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sass import (
    ControlCode,
    Imm,
    Instruction,
    Mem,
    Pred,
    Reg,
    decode_instruction,
    encode_instruction,
    parse_line,
)
from repro.sass.operands import Const

regs = st.integers(0, 252).map(Reg)
rz_or_reg = st.one_of(regs, st.just(Reg(255)))
preds = st.builds(Pred, st.integers(0, 6), st.booleans())
guards = st.one_of(st.just(Pred(7)), preds)
imms = st.integers(0, 0xFFFFFFFF).map(Imm)
consts = st.builds(
    Const, st.integers(0, 7), st.integers(0, 1023).map(lambda x: 4 * x)
)
b_operands = st.one_of(regs, imms, consts)
controls = st.builds(
    ControlCode,
    stall=st.integers(0, 15),
    yield_flag=st.booleans(),
    write_bar=st.sampled_from([0, 1, 2, 3, 4, 5, 7]),
    read_bar=st.sampled_from([0, 1, 2, 3, 4, 5, 7]),
    wait_mask=st.integers(0, 63),
    reuse=st.integers(0, 15),
)


def _roundtrip(instr: Instruction) -> None:
    word = encode_instruction(instr)
    back = decode_instruction(word)
    assert encode_instruction(back) == word
    assert back.text() == instr.text()
    # Canonical text reparses to identical bits.
    reparsed = parse_line(instr.text())
    assert encode_instruction(reparsed) == word


@given(
    dest=regs,
    a=rz_or_reg,
    b=b_operands,
    c=rz_or_reg,
    guard=guards,
    control=controls,
    neg_a=st.booleans(),
    neg_c=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_fuzz_ffma(dest, a, b, c, guard, control, neg_a, neg_c):
    import dataclasses

    a = Reg(a.index, negated=neg_a and not a.is_rz)
    c = Reg(c.index, negated=neg_c and not c.is_rz)
    srcs = [a, b, c]
    # Reuse bits are only meaningful on register slots (the encoder
    # rejects anything else); mirror the surviving flags onto operands
    # the way the parser does so text() matches after decode.
    allowed = sum(
        1 << slot for slot, src in enumerate(srcs) if isinstance(src, Reg)
    )
    control = dataclasses.replace(control, reuse=control.reuse & allowed)
    for slot, src in enumerate(srcs):
        if isinstance(src, Reg) and control.reuse & (1 << slot):
            srcs[slot] = Reg(src.index, reuse=True, negated=src.negated)
    instr = Instruction(
        name="FFMA", dest=dest, srcs=tuple(srcs), guard=guard, control=control
    )
    _roundtrip(instr)


@given(
    dest=regs,
    base=regs,
    offset=st.integers(-(1 << 20), (1 << 20) - 1).map(lambda x: 4 * x),
    guard=guards,
    width=st.sampled_from([(), ("E",), ("E", "64"), ("E", "128")]),
    control=controls.filter(lambda c: c.reuse == 0),
)
@settings(max_examples=200, deadline=None)
def test_fuzz_ldg(dest, base, offset, guard, width, control):
    vec = {(): 1, ("E",): 1, ("E", "64"): 2, ("E", "128"): 4}[width]
    dest = Reg((dest.index // vec) * vec)
    if dest.index + vec > 253:
        dest = Reg(0)
    flags = tuple(sorted(width, key=("32", "64", "128", "16", "E").index))
    instr = Instruction(
        name="LDG", flags=flags, dest=dest, mem=Mem(base, offset),
        guard=guard, control=control,
    )
    _roundtrip(instr)


@given(
    pdst=st.integers(0, 6),
    a=regs,
    b=b_operands,
    combine=st.one_of(st.just(Pred(7)), preds),
    cmp=st.sampled_from(["EQ", "NE", "LT", "LE", "GT", "GE"]),
    boolean=st.sampled_from(["AND", "OR", "XOR"]),
    unsigned=st.booleans(),
    control=controls.filter(lambda c: c.reuse == 0),
)
@settings(max_examples=150, deadline=None)
def test_fuzz_isetp(pdst, a, b, combine, cmp, boolean, unsigned, control):
    flags = [cmp, boolean] + (["U32"] if unsigned else [])
    from repro.sass import spec_for

    order = spec_for("ISETP").valid_flags
    instr = Instruction(
        name="ISETP",
        flags=tuple(sorted(flags, key=order.index)),
        dest_preds=(Pred(pdst), Pred(7)),
        srcs=(a, b),
        src_pred=combine,
        control=control,
    )
    _roundtrip(instr)


@given(
    dest=regs,
    mask=st.integers(0, 127).map(Imm),
    control=controls.filter(lambda c: c.reuse == 0),
)
@settings(max_examples=60, deadline=None)
def test_fuzz_p2r(dest, mask, control):
    _roundtrip(Instruction(name="P2R", dest=dest, srcs=(mask,), control=control))


@given(target=st.integers(-(1 << 20), (1 << 20)), guard=guards)
@settings(max_examples=60, deadline=None)
def test_fuzz_bra(target, guard):
    instr = Instruction(name="BRA", target=target, guard=guard)
    word = encode_instruction(instr)
    back = decode_instruction(word)
    assert back.target == target and back.guard == guard
