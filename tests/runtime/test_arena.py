"""WorkspaceArena: reservation, reuse, limits, coalescing."""

import pytest

from repro.common.errors import WorkspaceError, WorkspaceLimitError
from repro.runtime import ALIGNMENT, WorkspaceArena


def test_reserve_returns_writable_view():
    arena = WorkspaceArena()
    block = arena.reserve(1024, tag="t")
    view = block.view()
    assert view.nbytes == 1024
    view[:] = b"\x07" * 1024
    assert view[0] == 7
    block.release()


def test_sequential_reserve_release_reuses_offset():
    arena = WorkspaceArena()
    a = arena.reserve(4096)
    a.release()
    b = arena.reserve(2048)
    stats = arena.stats()
    assert stats.reuses == 1
    assert stats.peak_bytes == 4096
    b.release()
    assert arena.stats().in_use_bytes == 0


def test_growing_sizes_still_count_as_reuse():
    # The session pattern: each layer needs more than the last.  The
    # arena grows, but the low bytes are reused every time.
    arena = WorkspaceArena()
    sizes = [1 << 18, 1 << 20, 1 << 22, 1 << 24]
    for size in sizes:
        block = arena.reserve(size)
        block.release()
    stats = arena.stats()
    assert stats.reserves == len(sizes)
    assert stats.reuses == len(sizes) - 1
    assert stats.peak_bytes == sizes[-1]


def test_reserve_capacity_not_counted_as_grow():
    arena = WorkspaceArena()
    arena.reserve_capacity(1 << 24)
    block = arena.reserve(1 << 24)
    assert arena.stats().grows == 0
    block.release()


def test_limit_enforced():
    arena = WorkspaceArena(limit_bytes=4096)
    block = arena.reserve(2048)
    with pytest.raises(WorkspaceLimitError):
        arena.reserve(4096)
    block.release()
    arena.reserve(4096).release()  # fits once the first block is gone


def test_concurrent_blocks_get_disjoint_offsets():
    arena = WorkspaceArena()
    a = arena.reserve(1000)
    b = arena.reserve(1000)
    assert a.offset != b.offset
    assert abs(a.offset - b.offset) >= 1000
    a.view()[:] = b"\x01" * a.view().nbytes
    b.view()[:] = b"\x02" * b.view().nbytes
    assert a.view()[0] == 1 and b.view()[0] == 2
    a.release()
    b.release()


def test_free_blocks_coalesce():
    arena = WorkspaceArena()
    blocks = [arena.reserve(ALIGNMENT) for _ in range(3)]
    for block in blocks:
        block.release()
    # All three coalesced back into the bump region: a reservation the
    # size of the sum fits without growing.
    before = arena.stats().grows
    arena.reserve(3 * ALIGNMENT).release()
    assert arena.stats().grows == before


def test_zero_byte_reservation_is_noop():
    arena = WorkspaceArena()
    block = arena.reserve(0)
    assert block.nbytes == 0
    block.release()
    stats = arena.stats()
    assert stats.peak_bytes == 0
    assert stats.reuses == 0


def test_double_release_raises():
    arena = WorkspaceArena()
    block = arena.reserve(256)
    block.release()
    with pytest.raises(WorkspaceError):
        block.release()


def test_view_after_release_raises():
    arena = WorkspaceArena()
    block = arena.reserve(256)
    block.release()
    with pytest.raises(WorkspaceError):
        block.view()


def test_context_manager_releases():
    arena = WorkspaceArena()
    with arena.reserve(512) as block:
        assert block.view().nbytes == 512
    assert arena.stats().in_use_bytes == 0


def test_reset_clears_counters_and_frees():
    arena = WorkspaceArena()
    arena.reserve(1024)  # deliberately leaked
    arena.reset()
    stats = arena.stats()
    assert stats.in_use_bytes == 0
    assert stats.reserves == 0
    assert stats.peak_bytes == 0


def test_concurrent_reserve_release_counters_stay_consistent():
    # Many threads hammer reserve/release under a hard budget: the limit
    # must never be exceeded (threads that lose the race see
    # WorkspaceLimitError and retry), counters must balance when the dust
    # settles, and no two live blocks may overlap.
    import threading

    block_bytes = 4 * ALIGNMENT
    slots = 8  # budget admits at most 8 concurrent blocks
    arena = WorkspaceArena(limit_bytes=slots * block_bytes)
    threads_n, iterations = 16, 200
    granted = [0] * threads_n
    denied = [0] * threads_n
    overlap_errors = []
    live_lock = threading.Lock()
    live: dict[int, tuple[int, int]] = {}  # id(block) -> (offset, end)

    def worker(tid: int) -> None:
        for _ in range(iterations):
            try:
                block = arena.reserve(block_bytes, tag=f"t{tid}")
            except WorkspaceLimitError:
                denied[tid] += 1
                continue
            granted[tid] += 1
            span = (block.offset, block.offset + block.nbytes)
            with live_lock:
                for other in live.values():
                    if span[0] < other[1] and other[0] < span[1]:
                        overlap_errors.append((span, other))
                live[id(block)] = span
            stats = arena.stats()
            assert stats.in_use_bytes <= slots * block_bytes
            with live_lock:
                del live[id(block)]
            block.release()

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not overlap_errors
    stats = arena.stats()
    assert stats.reserves == sum(granted)
    assert stats.releases == sum(granted)
    assert stats.in_use_bytes == 0
    assert 0 < stats.peak_bytes <= slots * block_bytes
    assert sum(granted) + sum(denied) == threads_n * iterations
