"""InferenceSession: compilation, execution, arena coupling, e2e paper run."""

import numpy as np
import pytest

from repro.common import ConvProblem
from repro.common.errors import ConvConfigError
from repro.common.rng import make_rng, random_activation, random_filter
from repro.convolution import conv2d
from repro.runtime import ExecutionContext, InferenceSession

TINY = [
    ConvProblem(n=1, c=4, h=8, w=8, k=4),
    ConvProblem(n=1, c=8, h=8, w=8, k=8),
]


def _tensors(problems, seed=0):
    rng = make_rng(seed)
    return ([random_activation(p, rng) for p in problems],
            [random_filter(p, rng) for p in problems])


def test_compile_produces_plan_per_layer():
    session = InferenceSession(TINY, context=ExecutionContext())
    plans = session.compile()
    assert len(plans) == len(TINY)
    for plan, prob in zip(plans, TINY):
        assert plan.prob is prob
        assert plan.algo
        assert plan.workspace_bytes >= 0
    assert session.compile() is plans  # memoized


def test_run_matches_per_layer_conv2d():
    ctx = ExecutionContext()
    session = InferenceSession(TINY, context=ctx)
    inputs, filters = _tensors(TINY)
    result = session.run(inputs, filters)
    assert len(result.outputs) == len(TINY)
    for plan, x, f, y in zip(session.plans, inputs, filters, result.outputs):
        expect = conv2d(x, f, pad=plan.prob.pad, algo=plan.algo)
        np.testing.assert_array_equal(y, expect)


def test_forced_algorithm_mode():
    ctx = ExecutionContext()
    session = InferenceSession(TINY, mode="DIRECT", context=ctx)
    inputs, filters = _tensors(TINY)
    result = session.run(inputs, filters)
    assert all(run.algo == "DIRECT" for run in result.layers)
    assert result.arena.peak_bytes == 0  # DIRECT needs no workspace


def test_auto_mode_compiles_from_trials():
    ctx = ExecutionContext()
    session = InferenceSession(TINY[:1], mode="AUTO", context=ctx)
    inputs, filters = _tensors(TINY[:1])
    result = session.run(inputs, filters)
    from repro.convolution.api import ALGORITHMS

    assert session.plans[0].algo in ALGORITHMS
    assert ctx.dispatch_stats.trials_run > 0
    assert len(result.layers) == 1


def test_auto_mode_requires_calibration_for_bare_compile():
    session = InferenceSession(TINY, mode="AUTO", context=ExecutionContext())
    with pytest.raises(ConvConfigError):
        session.compile()


def test_pipelined_run_matches_serial():
    ctx_a, ctx_b = ExecutionContext(), ExecutionContext()
    inputs, filters = _tensors(TINY)
    serial = InferenceSession(TINY, context=ctx_a).run(inputs, filters)
    piped = InferenceSession(TINY, context=ctx_b).run(
        inputs, filters, pipeline=True
    )
    assert piped.pipelined
    for a, b in zip(serial.outputs, piped.outputs):
        np.testing.assert_array_equal(a, b)


def test_shape_mismatch_rejected():
    session = InferenceSession(TINY, context=ExecutionContext())
    inputs, filters = _tensors(TINY)
    with pytest.raises(ConvConfigError):
        session.run(inputs[::-1], filters)


def test_layer_count_mismatch_rejected():
    session = InferenceSession(TINY, context=ExecutionContext())
    inputs, filters = _tensors(TINY)
    with pytest.raises(ConvConfigError):
        session.run(inputs[:1], filters[:1])


def test_unknown_mode_rejected():
    with pytest.raises(ConvConfigError):
        InferenceSession(TINY, mode="FASTEST", context=ExecutionContext())


def test_empty_layer_list_rejected():
    with pytest.raises(ConvConfigError):
        InferenceSession([], context=ExecutionContext())


def test_workspace_limit_excludes_algorithms():
    # A zero workspace budget forbids WINOGRAD's 16KC bytes; the session
    # must fall back to a workspace-free algorithm, not blow the arena.
    ctx = ExecutionContext()
    session = InferenceSession(
        TINY, workspace_limit_bytes=0, context=ctx
    )
    inputs, filters = _tensors(TINY)
    result = session.run(inputs, filters)
    assert all(run.workspace_bytes == 0 for run in result.layers)
    assert result.arena.peak_bytes == 0


def test_result_to_dict_is_json_ready():
    import json

    session = InferenceSession(TINY, context=ExecutionContext())
    inputs, filters = _tensors(TINY)
    result = session.run(inputs, filters)
    payload = json.loads(json.dumps(result.to_dict()))
    assert len(payload["layers"]) == len(TINY)
    assert payload["arena"]["reserves"] == len(TINY)


@pytest.mark.slow
def test_paper_resnet_layers_end_to_end():
    """Satellite: the four Table-1 ResNet 3x3 layers at N=32.

    Asserts the per-layer algorithm choices, the arena's high-water
    mark and reuse accounting, bit-identical outputs vs per-layer
    conv2d, and determinism across two runs.
    """
    from repro.models import resnet_layer
    from repro.perfmodel.workspace import dispatch_workspace_bytes

    problems = [
        resnet_layer(name, 32) for name in ("Conv2", "Conv3", "Conv4", "Conv5")
    ]
    inputs, filters = _tensors(problems)

    ctx = ExecutionContext()
    session = InferenceSession(problems, context=ctx)
    result = session.run(inputs, filters)

    # The heuristic picks a fused Winograd kernel for every 3x3 ResNet
    # layer (that is the point of the paper) — the F(4x4,3x3) family,
    # whose projected time beats F(2x2,3x3) at these shapes (§8.1).
    assert [run.algo for run in result.layers] == ["WINOGRAD_F44"] * 4
    assert [plan.tile for plan in session.plans] == ["f44"] * 4

    # One arena buffer sized at the largest single layer's closed-form
    # workspace (Conv5: 36*512*512*4 = 36 MiB — the 6x6 transform holds
    # 36 elements per tile vs f22's 16), reused by every layer.
    per_layer = [
        dispatch_workspace_bytes(p, plan.algo)
        for p, plan in zip(problems, session.plans)
    ]
    assert result.arena.peak_bytes == max(per_layer) == 36 << 20
    assert result.arena.reuses >= len(problems) - 1
    assert result.arena.grows == 0  # pre-sized from the compiled plan

    # Bit-identical to running each layer through conv2d directly.
    for plan, x, f, y in zip(session.plans, inputs, filters, result.outputs):
        np.testing.assert_array_equal(
            y, conv2d(x, f, pad=plan.prob.pad, algo=plan.algo)
        )

    # Deterministic across a second run in a fresh context.
    again = InferenceSession(problems, context=ExecutionContext()).run(
        inputs, filters
    )
    for a, b in zip(result.outputs, again.outputs):
        np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# Pipelined workspace accounting: reservations must track the pool's
# *actual* width, not the layer count (regression for the phantom-
# concurrency bug where _run_pipelined reserved every layer up front).
# ---------------------------------------------------------------------------
GEMM_STACK = [
    ConvProblem(n=1, c=4, h=8, w=8, k=4, name=f"Pipe{i}") for i in range(4)
]


def test_pipelined_arena_peak_matches_worker_concurrency(monkeypatch):
    # With one effective worker only one layer is ever in flight, so the
    # arena's high-water mark must be a single layer's workspace.  The
    # pre-fix code reserved all four up front and reported 4x.
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "1")
    ctx = ExecutionContext()
    session = InferenceSession(GEMM_STACK, mode="GEMM", context=ctx)
    inputs, filters = _tensors(GEMM_STACK)
    result = session.run(inputs, filters, pipeline=True)
    per_layer = session.plans[0].workspace_bytes
    assert per_layer > 0
    assert result.arena.peak_bytes == per_layer
    for plan, x, f, y in zip(session.plans, inputs, filters, result.outputs):
        np.testing.assert_array_equal(y, conv2d(x, f, pad=plan.prob.pad, algo="GEMM"))


def test_pipelined_fits_budget_sized_for_true_concurrency(monkeypatch):
    # A budget that fits the serial (and one-worker pipelined) run must
    # not trip WorkspaceLimitError just because pipeline=True.  Pre-fix,
    # the up-front reservation of all layers blew this limit.
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "1")
    per_layer = InferenceSession(
        GEMM_STACK, mode="GEMM", context=ExecutionContext()
    ).compile()[0].workspace_bytes
    ctx = ExecutionContext()
    session = InferenceSession(
        GEMM_STACK, mode="GEMM",
        workspace_limit_bytes=per_layer, context=ctx,
    )
    inputs, filters = _tensors(GEMM_STACK)
    result = session.run(inputs, filters, pipeline=True)  # must not raise
    assert result.arena.peak_bytes <= per_layer


def test_pipelined_peak_bounded_by_two_workers(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
    ctx = ExecutionContext()
    session = InferenceSession(GEMM_STACK, mode="GEMM", context=ctx)
    inputs, filters = _tensors(GEMM_STACK)
    result = session.run(inputs, filters, pipeline=True)
    per_layer = session.plans[0].workspace_bytes
    assert per_layer <= result.arena.peak_bytes <= 2 * per_layer


def test_layer_run_records_both_clocks():
    # seconds = worker compute time; latency_seconds = parent-side
    # queue-to-done latency (>= compute on the pool path, ~equal serial).
    ctx = ExecutionContext()
    session = InferenceSession(TINY, context=ctx)
    inputs, filters = _tensors(TINY)
    result = session.run(inputs, filters, pipeline=True)
    for run in result.layers:
        assert run.seconds >= 0.0
        assert run.latency_seconds > 0.0
        payload = run.to_dict()
        assert "latency_seconds" in payload and "seconds" in payload
    # Parent-side latencies are what total_seconds decomposes into; each
    # must fit inside the end-to-end wall-clock.
    assert all(
        run.latency_seconds <= result.total_seconds for run in result.layers
    )
