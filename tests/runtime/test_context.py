"""ExecutionContext: isolation, activation, reset, tracing, delegation."""

import json

import numpy as np
import pytest

from repro.convolution import conv2d
from repro.runtime import (
    ExecutionContext,
    activate,
    current_context,
    default_context,
)


@pytest.fixture
def tiny():
    rng = np.random.default_rng(7)
    x = rng.standard_normal((1, 4, 8, 8), dtype=np.float32)
    f = rng.standard_normal((4, 4, 3, 3), dtype=np.float32)
    return x, f


def test_current_context_defaults_to_process_default():
    assert current_context() is default_context()


def test_activate_stacks_and_restores():
    a, b = ExecutionContext(), ExecutionContext()
    with activate(a):
        assert current_context() is a
        with activate(b):
            assert current_context() is b
        assert current_context() is a
    assert current_context() is default_context()


def test_contexts_isolate_plan_caches_and_stats(tiny):
    x, f = tiny
    a, b = ExecutionContext(), ExecutionContext()
    with activate(a):
        conv2d(x, f, algo="AUTO_HEURISTIC")
    assert len(a.plans) == 1
    assert len(b.plans) == 0
    assert a.dispatch_stats.calls == 1
    assert b.dispatch_stats.calls == 0


def test_explicit_context_kwarg_wins_over_active(tiny):
    x, f = tiny
    active, explicit = ExecutionContext(), ExecutionContext()
    with activate(active):
        conv2d(x, f, algo="AUTO_HEURISTIC", context=explicit)
    assert len(explicit.plans) == 1
    assert len(active.plans) == 0


def test_reset_clears_everything(tiny):
    x, f = tiny
    ctx = ExecutionContext()
    with activate(ctx):
        conv2d(x, f, algo="AUTO_HEURISTIC")
        ctx.arena.reserve(1024).release()
    assert len(ctx.plans) == 1
    assert ctx.dispatch_stats.calls == 1
    assert ctx.arena.stats().reserves == 1
    assert ctx.export_trace()
    ctx.reset()
    assert len(ctx.plans) == 0
    assert ctx.dispatch_stats.calls == 0
    assert ctx.arena.stats().reserves == 0
    assert ctx.export_trace() == []


def test_plan_span_recorded_with_algo(tiny):
    x, f = tiny
    ctx = ExecutionContext()
    conv2d(x, f, algo="AUTO_HEURISTIC", context=ctx)
    spans = [s for s in ctx.export_trace() if s["kind"] == "plan"]
    assert len(spans) == 1
    assert spans[0]["attrs"]["algo"] in (
        "WINOGRAD", "WINOGRAD_NONFUSED", "DIRECT",
    )
    assert spans[0]["seconds"] >= 0


def test_trace_hooks_fire_and_export_is_json(tiny):
    x, f = tiny
    ctx = ExecutionContext()
    seen = []
    ctx.add_trace_hook(lambda span: seen.append(span.kind))
    conv2d(x, f, algo="AUTO_HEURISTIC", context=ctx)
    assert "plan" in seen
    json.dumps(ctx.export_trace())  # must be serializable as-is
    ctx.remove_trace_hook(ctx.tracer._hooks[0])


def test_write_trace(tmp_path, tiny):
    x, f = tiny
    ctx = ExecutionContext()
    conv2d(x, f, algo="AUTO_HEURISTIC", context=ctx)
    path = tmp_path / "trace.json"
    ctx.write_trace(str(path))
    spans = json.loads(path.read_text())
    assert spans and spans[0]["kind"] == "plan"


def test_trace_buffer_bounded():
    ctx = ExecutionContext(trace_spans=4)
    for i in range(10):
        with ctx.span("x", f"s{i}"):
            pass
    assert len(ctx.export_trace()) == 4
    assert ctx.tracer.dropped == 6


def test_legacy_helpers_follow_active_context(tiny):
    x, f = tiny
    from repro.convolution.autotune import get_plan_cache
    from repro.convolution.metrics import get_dispatch_stats
    from repro.kernels.cache import get_kernel_cache_stats

    ctx = ExecutionContext()
    with activate(ctx):
        conv2d(x, f, algo="AUTO_HEURISTIC")
        assert get_dispatch_stats().calls == 1
        assert len(get_plan_cache()) == 1
        assert get_kernel_cache_stats().hits == 0
    assert ctx.dispatch_stats.calls == 1


def test_plan_eviction_counts_on_current_stats_object(tiny):
    x, f = tiny
    ctx = ExecutionContext(plan_cache_entries=1)
    with activate(ctx):
        conv2d(x, f, algo="AUTO_HEURISTIC")
        conv2d(x[:, :, :6, :6], f, algo="AUTO_HEURISTIC")  # evicts the first
    assert ctx.dispatch_stats.plan_evictions == 1


def test_device_default_used_by_auto_heuristic(tiny):
    x, f = tiny
    from repro.gpusim import RTX2070

    ctx = ExecutionContext(device=RTX2070)
    conv2d(x, f, algo="AUTO_HEURISTIC", context=ctx)
    (span,) = [s for s in ctx.export_trace() if s["kind"] == "plan"]
    assert span["attrs"]["device"] == RTX2070.name
