"""``python -m repro`` dispatch and the ``session`` subcommand."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main as repro_main
from repro.runtime.cli import main as cli_main


def test_unknown_command_exits_2(capsys):
    assert repro_main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_no_command_prints_usage(capsys):
    assert repro_main([]) == 2
    assert "sass" in capsys.readouterr().out


def test_help_exits_0(capsys):
    assert repro_main(["--help"]) == 0
    assert "session" in capsys.readouterr().out


def test_sass_dispatch_reaches_sub_cli():
    # The sub-CLI's own argparse handles --help and exits 0.
    with pytest.raises(SystemExit) as exc:
        repro_main(["sass", "--help"])
    assert exc.value.code == 0


def test_kernels_dispatch_reaches_sub_cli():
    with pytest.raises(SystemExit) as exc:
        repro_main(["kernels", "--help"])
    assert exc.value.code == 0


def test_session_runs_tiny_problem(tmp_path, capsys):
    out_json = tmp_path / "result.json"
    trace = tmp_path / "trace.json"
    rc = cli_main([
        "session", "--layers", "Conv3", "--batch", "1",
        "--json", str(out_json), "--trace", str(trace),
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "Conv3N1" in captured
    payload = json.loads(out_json.read_text())
    assert payload["layers"][0]["layer"] == "Conv3N1"
    spans = json.loads(trace.read_text())
    assert any(s["kind"] == "plan" for s in spans)


def test_session_forced_algorithm(capsys):
    rc = cli_main([
        "session", "--layers", "Conv3", "--batch", "1", "--mode", "DIRECT",
    ])
    assert rc == 0
    assert "DIRECT" in capsys.readouterr().out


@pytest.mark.slow
def test_module_invocation_subprocess(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "session",
         "--layers", "Conv3", "--batch", "1"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Conv3N1" in proc.stdout
