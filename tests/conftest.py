"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-kernel simulator runs (seconds each)"
    )


@pytest.fixture
def rng():
    from repro.common import make_rng

    return make_rng(1234)
