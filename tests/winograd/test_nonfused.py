"""Non-fused F(4×4,3×3) pipeline and its workspace accounting."""

import numpy as np
import pytest

from repro.common import (
    ConvConfigError,
    ConvProblem,
    LayoutError,
    conv_tolerance,
    kcrs_to_crsk,
    khwn_to_nkhw,
    make_rng,
    nchw_to_chwn,
    random_activation,
    random_filter,
)
from repro.convolution import direct_conv2d
from repro.winograd import NonFusedWinogradConv


def _run(prob, m=4, seed=0):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    conv = NonFusedWinogradConv(m=m)
    y, stats = conv.run(nchw_to_chwn(x), kcrs_to_crsk(f), prob)
    ref = direct_conv2d(x, f)
    np.testing.assert_allclose(khwn_to_nkhw(y), ref, atol=conv_tolerance(prob) * 8)
    return conv, stats


@pytest.mark.parametrize("m", [2, 4])
def test_matches_direct(m):
    _run(ConvProblem(n=2, c=4, h=10, w=10, k=6), m=m)


def test_odd_sizes():
    _run(ConvProblem(n=2, c=3, h=7, w=9, k=5))


def test_conv5_like():
    _run(ConvProblem(n=4, c=8, h=7, w=7, k=8))


def test_workspace_formula_matches_run():
    prob = ConvProblem(n=2, c=4, h=8, w=8, k=6)
    conv, stats = _run(prob)
    assert stats.workspace_bytes == conv.workspace_bytes(prob)
    assert stats.workspace_bytes == (
        stats.transformed_input_bytes
        + stats.transformed_filter_bytes
        + stats.transformed_output_bytes
    )


def test_workspace_components():
    prob = ConvProblem(n=2, c=4, h=8, w=8, k=6)
    _, stats = _run(prob)
    total = prob.total_tiles(4)
    assert stats.transformed_input_bytes == 36 * 4 * total * 4
    assert stats.transformed_filter_bytes == 36 * 4 * 6 * 4
    assert stats.transformed_output_bytes == 36 * 6 * total * 4


def test_gemm_flops_accounting():
    prob = ConvProblem(n=1, c=2, h=8, w=8, k=3)
    _, stats = _run(prob)
    assert stats.gemm_flops == 2 * 36 * 3 * 2 * prob.total_tiles(4)


def test_rejects_non3x3():
    conv = NonFusedWinogradConv()
    with pytest.raises(ConvConfigError):
        conv.run(
            np.zeros((2, 8, 8, 1), dtype=np.float32),
            np.zeros((2, 5, 5, 3), dtype=np.float32),
        )


def test_rejects_bad_layout():
    conv = NonFusedWinogradConv()
    with pytest.raises(LayoutError):
        conv.run(np.zeros((2, 8, 8), dtype=np.float32), np.zeros((2, 3, 3, 3), dtype=np.float32))
