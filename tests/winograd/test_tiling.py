"""Tile gather/scatter and implicit zero-padding masks (§3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import LayoutError
from repro.winograd import (
    TILE_F22,
    TILE_F44,
    gather_input_tiles_chwn,
    mask_words,
    pack_mask,
    scatter_output_tiles_khwn,
    tile_index_grid,
    unpack_mask,
    zero_pad_mask,
)

F22 = dict(alpha=TILE_F22.alpha, m=TILE_F22.m, pad=1)
F44 = dict(alpha=TILE_F44.alpha, m=TILE_F44.m, pad=1)


def test_interior_tile_mask_all_true():
    mask = zero_pad_mask(2, 2, h=10, w=10, **F22)
    assert mask.all()


def test_corner_tile_mask():
    # Tile (0, 0) starts at input (-1, -1): first row and column are pad.
    mask = zero_pad_mask(0, 0, h=10, w=10, **F22)
    assert not mask[0].any()
    assert not mask[:, 0].any()
    assert mask[1:, 1:].all()


def test_bottom_edge_mask_conv5():
    # 7×7 input, tile row 3 starts at 2·3−1 = 5: rows 5,6 valid, 7,8 not.
    mask = zero_pad_mask(3, 0, h=7, w=7, **F22)
    assert mask[0, 1] and mask[1, 1]
    assert not mask[2].any() and not mask[3].any()


def test_f44_corner_tile_mask():
    # 6×6 tile (0, 0) starts at (-1, -1): one pad row/col, 5 valid.
    mask = zero_pad_mask(0, 0, h=14, w=14, **F44)
    assert mask.shape == (6, 6)
    assert not mask[0].any() and not mask[:, 0].any()
    assert mask[1:, 1:].all()


def test_mask_matches_padded_indexing():
    h = w = 6
    x = np.arange(h * w, dtype=np.float32).reshape(h, w)
    xp = np.pad(x + 1, 1)  # +1 so zeros only come from the pad
    for th in range(3):
        for tw in range(3):
            mask = zero_pad_mask(th, tw, h, w, **F22)
            window = xp[th * 2 : th * 2 + 4, tw * 2 : tw * 2 + 4]
            np.testing.assert_array_equal(mask, window != 0)


@given(bits=st.integers(0, 2**16 - 1))
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(bits):
    mask = unpack_mask(bits, (4, 4))
    assert pack_mask(mask) == (bits,)


def test_pack_is_row_major_bit_order():
    mask = np.zeros((4, 4), dtype=bool)
    mask[1, 2] = True  # element index 6
    assert pack_mask(mask) == (1 << 6,)


# ---------------------------------------------------------------------------
# Multi-word masks: a 6×6 f44 tile has 36 predicate bits, spanning two
# 32-bit register words (what two P2R words materialize in the prologue).
# ---------------------------------------------------------------------------
def test_mask_words_counts():
    assert mask_words(16) == 1
    assert mask_words(32) == 1
    assert mask_words(33) == 2
    assert mask_words(36) == 2
    assert mask_words(0) == 1
    with pytest.raises(LayoutError):
        mask_words(-1)


def test_pack_mask_6x6_spans_two_words():
    mask = np.zeros((6, 6), dtype=bool)
    mask[0, 0] = True   # element 0  → word 0, bit 0
    mask[5, 1] = True   # element 31 → word 0, bit 31
    mask[5, 2] = True   # element 32 → word 1, bit 0
    mask[5, 5] = True   # element 35 → word 1, bit 3
    words = pack_mask(mask)
    assert len(words) == 2
    assert words[0] == (1 << 0) | (1 << 31)
    assert words[1] == (1 << 0) | (1 << 3)
    np.testing.assert_array_equal(unpack_mask(words, (6, 6)), mask)


@given(bits=st.integers(0, 2**36 - 1))
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip_multiword(bits):
    words = (bits & 0xFFFFFFFF, bits >> 32)
    mask = unpack_mask(words, (6, 6))
    assert pack_mask(mask) == words


def test_f44_zero_pad_mask_packs_round_trip():
    for th in range(3):
        for tw in range(3):
            mask = zero_pad_mask(th, tw, h=9, w=9, **F44)
            words = pack_mask(mask)
            assert len(words) == 2
            assert all(0 <= wd < (1 << 32) for wd in words)
            np.testing.assert_array_equal(unpack_mask(words, (6, 6)), mask)


def test_unpack_rejects_short_word_list():
    with pytest.raises(LayoutError):
        unpack_mask((0,), (6, 6))
    with pytest.raises(LayoutError):
        unpack_mask((0, 1 << 32), (6, 6))  # not a 32-bit register word


def test_gather_matches_padded_slices():
    rng = np.random.default_rng(3)
    c, h, w, n = 3, 6, 5, 2
    x = rng.standard_normal((c, h, w, n)).astype(np.float32)
    xp = np.pad(x, ((0, 0), (1, 2), (1, 2), (0, 0)))
    rows = np.array([0, 1, 2, 0])
    cols = np.array([0, 1, 2, 2])
    tiles = gather_input_tiles_chwn(x, rows, cols, **F22)
    assert tiles.shape == (c, 4, 4, 4, n)
    for t in range(4):
        expect = xp[:, rows[t] * 2 : rows[t] * 2 + 4, cols[t] * 2 : cols[t] * 2 + 4]
        np.testing.assert_array_equal(tiles[:, t], expect)


def test_gather_f44_matches_padded_slices():
    rng = np.random.default_rng(5)
    c, h, w, n = 2, 9, 8, 2
    x = rng.standard_normal((c, h, w, n)).astype(np.float32)
    xp = np.pad(x, ((0, 0), (1, 4), (1, 4), (0, 0)))
    rows = np.array([0, 1, 2])
    cols = np.array([0, 1, 1])
    tiles = gather_input_tiles_chwn(x, rows, cols, **F44)
    assert tiles.shape == (c, 3, 6, 6, n)
    for t in range(3):
        expect = xp[:, rows[t] * 4 : rows[t] * 4 + 6, cols[t] * 4 : cols[t] * 4 + 6]
        np.testing.assert_array_equal(tiles[:, t], expect)


def test_gather_checks_layout():
    with pytest.raises(LayoutError):
        gather_input_tiles_chwn(
            np.zeros((3, 6, 5)), np.array([0]), np.array([0]), **F22
        )


def test_scatter_crops_overhang():
    k, h, w, n = 2, 5, 5, 1  # odd output: tile (2,2) covers row/col 5 (cropped)
    y = np.zeros((k, h, w, n), dtype=np.float32)
    tiles = np.ones((k, 9, 2, 2, n), dtype=np.float32)
    rows, cols, _ = tile_index_grid(3, 3, 1)
    scatter_output_tiles_khwn(y, tiles, rows, cols, m=2)
    assert (y == 1).all()  # every in-bounds pixel written exactly once


def test_scatter_crops_overhang_f44():
    k, h, w, n = 2, 7, 7, 1  # 7 = 4 + 3: second tile row/col is cropped
    y = np.zeros((k, h, w, n), dtype=np.float32)
    tiles = np.ones((k, 4, 4, 4, n), dtype=np.float32)
    rows, cols, _ = tile_index_grid(2, 2, 1)
    scatter_output_tiles_khwn(y, tiles, rows, cols, m=4)
    assert (y == 1).all()


def test_tile_index_grid_batch_fastest():
    rows, cols, batch = tile_index_grid(2, 3, 4)
    assert rows.size == 24
    # Batch varies fastest (coalescing requirement).
    assert list(batch[:4]) == [0, 1, 2, 3]
    assert rows[0] == rows[3] and cols[0] == cols[3]
    # Then tile column, then tile row.
    assert cols[4] == 1 and rows[4] == 0
    assert rows[12] == 1
