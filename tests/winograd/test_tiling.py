"""Tile gather/scatter and implicit zero-padding masks (§3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import LayoutError
from repro.winograd import (
    gather_input_tiles_chwn,
    pack_mask,
    scatter_output_tiles_khwn,
    tile_index_grid,
    unpack_mask,
    zero_pad_mask,
)


def test_interior_tile_mask_all_true():
    mask = zero_pad_mask(2, 2, h=10, w=10)
    assert mask.all()


def test_corner_tile_mask():
    # Tile (0, 0) starts at input (-1, -1): first row and column are pad.
    mask = zero_pad_mask(0, 0, h=10, w=10)
    assert not mask[0].any()
    assert not mask[:, 0].any()
    assert mask[1:, 1:].all()


def test_bottom_edge_mask_conv5():
    # 7×7 input, tile row 3 starts at 2·3−1 = 5: rows 5,6 valid, 7,8 not.
    mask = zero_pad_mask(3, 0, h=7, w=7)
    assert mask[0, 1] and mask[1, 1]
    assert not mask[2].any() and not mask[3].any()


def test_mask_matches_padded_indexing():
    h = w = 6
    x = np.arange(h * w, dtype=np.float32).reshape(h, w)
    xp = np.pad(x + 1, 1)  # +1 so zeros only come from the pad
    for th in range(3):
        for tw in range(3):
            mask = zero_pad_mask(th, tw, h, w)
            window = xp[th * 2 : th * 2 + 4, tw * 2 : tw * 2 + 4]
            np.testing.assert_array_equal(mask, window != 0)


@given(bits=st.integers(0, 2**16 - 1))
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(bits):
    mask = unpack_mask(bits, (4, 4))
    assert pack_mask(mask) == bits


def test_pack_is_row_major_bit_order():
    mask = np.zeros((4, 4), dtype=bool)
    mask[1, 2] = True  # element index 6
    assert pack_mask(mask) == 1 << 6


def test_pack_rejects_oversize():
    with pytest.raises(LayoutError):
        pack_mask(np.ones((6, 6), dtype=bool))
    with pytest.raises(LayoutError):
        unpack_mask(0, (6, 6))


def test_gather_matches_padded_slices():
    rng = np.random.default_rng(3)
    c, h, w, n = 3, 6, 5, 2
    x = rng.standard_normal((c, h, w, n)).astype(np.float32)
    xp = np.pad(x, ((0, 0), (1, 2), (1, 2), (0, 0)))
    rows = np.array([0, 1, 2, 0])
    cols = np.array([0, 1, 2, 2])
    tiles = gather_input_tiles_chwn(x, rows, cols)
    assert tiles.shape == (c, 4, 4, 4, n)
    for t in range(4):
        expect = xp[:, rows[t] * 2 : rows[t] * 2 + 4, cols[t] * 2 : cols[t] * 2 + 4]
        np.testing.assert_array_equal(tiles[:, t], expect)


def test_gather_checks_layout():
    with pytest.raises(LayoutError):
        gather_input_tiles_chwn(np.zeros((3, 6, 5)), np.array([0]), np.array([0]))


def test_scatter_crops_overhang():
    k, h, w, n = 2, 5, 5, 1  # odd output: tile (2,2) covers row/col 5 (cropped)
    y = np.zeros((k, h, w, n), dtype=np.float32)
    tiles = np.ones((k, 9, 2, 2, n), dtype=np.float32)
    rows, cols, _ = tile_index_grid(3, 3, 1)
    scatter_output_tiles_khwn(y, tiles, rows, cols)
    assert (y == 1).all()  # every in-bounds pixel written exactly once


def test_tile_index_grid_batch_fastest():
    rows, cols, batch = tile_index_grid(2, 3, 4)
    assert rows.size == 24
    # Batch varies fastest (coalescing requirement).
    assert list(batch[:4]) == [0, 1, 2, 3]
    assert rows[0] == rows[3] and cols[0] == cols[3]
    # Then tile column, then tile row.
    assert cols[4] == 1 and rows[4] == 0
    assert rows[12] == 1
