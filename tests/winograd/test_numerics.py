"""Numerical error growth across Winograd variants (§8.1)."""

import numpy as np

from repro.common import ConvProblem, make_rng, random_activation, random_filter
from repro.convolution import direct_conv2d
from repro.winograd import winograd_conv2d_nchw


def _errors():
    prob = ConvProblem(n=2, c=64, h=16, w=16, k=8)
    rng = make_rng(11)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    ref = direct_conv2d(x.astype(np.float64), f.astype(np.float64))
    scale = np.abs(ref).max()
    return {
        m: float(np.abs(winograd_conv2d_nchw(x, f, m=m) - ref).max() / scale)
        for m in (2, 4, 6)
    }


def test_error_grows_with_tile_size():
    errs = _errors()
    assert errs[2] < errs[4] < errs[6]


def test_f2_error_near_machine_precision():
    errs = _errors()
    assert errs[2] < 5e-6


def test_f6_error_still_usable_but_degraded():
    """The §8.1 'numerical issue': ≥10× worse than F(2×2), yet < 1e-3."""
    errs = _errors()
    assert errs[6] > 4 * errs[2]
    assert errs[6] < 1e-3
