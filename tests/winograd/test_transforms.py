"""Winograd transform construction: paper matrices, Cook-Toom, 2-D nesting."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConvConfigError
from repro.winograd import cook_toom, f23, f43, get_transform
from repro.winograd.transforms import WinogradTransform


def test_f23_matches_paper_matrices_exactly():
    t = f23()
    np.testing.assert_array_equal(t.at, [[1, 1, 1, 0], [0, 1, -1, -1]])
    np.testing.assert_array_equal(
        t.g, [[1, 0, 0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0, 0, 1]]
    )
    np.testing.assert_array_equal(
        t.bt, [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]]
    )


def test_f23_alpha_and_counts():
    t = f23()
    assert t.alpha == 4
    assert t.tile_multiplies_2d() == 16
    assert t.direct_multiplies_2d() == 36
    assert t.reduction_2d() == pytest.approx(2.25)


def test_f43_reduction_is_4x():
    assert f43().reduction_2d() == pytest.approx(4.0)


@pytest.mark.parametrize("make", [f23, f43])
def test_published_matrices_satisfy_identity(make):
    assert make(np.float64).check_identity() < 1e-6


@pytest.mark.parametrize(
    "m,r", [(2, 3), (3, 3), (4, 3), (5, 3), (6, 3), (2, 2), (3, 2), (4, 4), (2, 5)]
)
def test_cook_toom_identity(m, r):
    t = cook_toom(m, r)
    assert t.check_identity() < 1e-10


def test_cook_toom_custom_points():
    t = cook_toom(2, 3, points=(0, 2, -2))
    assert t.check_identity() < 1e-10


def test_cook_toom_fractional_points():
    t = cook_toom(3, 3, points=(0, 1, -1, Fraction(1, 2)))
    assert t.check_identity() < 1e-10


def test_cook_toom_rejects_duplicate_points():
    with pytest.raises(ConvConfigError):
        cook_toom(2, 3, points=(0, 1, 1))


def test_cook_toom_rejects_wrong_point_count():
    with pytest.raises(ConvConfigError):
        cook_toom(2, 3, points=(0, 1))


def test_cook_toom_rejects_bad_sizes():
    with pytest.raises(ConvConfigError):
        cook_toom(0, 3)


def test_get_transform_returns_paper_matrices():
    np.testing.assert_array_equal(get_transform(2, 3).at, f23().at)
    np.testing.assert_array_equal(get_transform(4, 3).g, f43().g)


def test_get_transform_constructs_other_sizes():
    t = get_transform(6, 3)
    assert t.alpha == 8
    assert t.check_identity() < 1e-5  # fp32 matrices


def test_shape_validation():
    t = f23()
    with pytest.raises(ConvConfigError):
        WinogradTransform(2, 3, t.at.T, t.g, t.bt)
    with pytest.raises(ConvConfigError):
        WinogradTransform(2, 3, t.at, t.g.T, t.bt)
    with pytest.raises(ConvConfigError):
        WinogradTransform(2, 3, t.at, t.g, t.bt[:3])


# ---------------------------------------------------------------------------
# 2-D nesting against a naive implementation
# ---------------------------------------------------------------------------
def _naive_2d_conv_tile(d, g, t):
    """Direct 2-D correlation of one alpha×alpha tile with an r×r filter."""
    m = t.m
    out = np.zeros((m, m))
    for x in range(m):
        for y in range(m):
            out[x, y] = np.sum(d[x : x + t.r, y : y + t.r] * g)
    return out


@pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (3, 2)])
def test_2d_nesting_equals_direct(m, r):
    t = cook_toom(m, r)
    rng = np.random.default_rng(5)
    d = rng.standard_normal((t.alpha, t.alpha))
    g = rng.standard_normal((r, r))
    fast = t.transform_output(t.transform_filter(g) * t.transform_input(d))
    np.testing.assert_allclose(fast, _naive_2d_conv_tile(d, g, t), atol=1e-10)


def test_transforms_batch_over_leading_dims():
    t = f23(np.float64)
    rng = np.random.default_rng(6)
    d = rng.standard_normal((3, 5, 4, 4))
    batched = t.transform_input(d)
    for i in range(3):
        for j in range(5):
            np.testing.assert_allclose(
                batched[i, j], t.bt @ d[i, j] @ t.bt.T, atol=1e-12
            )


@given(
    points=st.lists(
        st.integers(-4, 4), min_size=4, max_size=4, unique=True
    )
)
@settings(max_examples=25, deadline=None)
def test_cook_toom_any_distinct_points_work(points):
    """Any 4 distinct finite points admit a valid F(2,4)/F(3,3) algorithm."""
    t = cook_toom(3, 3, points=points)
    assert t.check_identity() < 1e-6


@given(
    m=st.integers(1, 4),
    r=st.integers(2, 4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_cook_toom_2d_nesting_equals_direct(m, r, seed):
    """Every constructible F(m,r), nested to 2-D, equals direct correlation.

    This is the property the whole tile family rests on: TileSpec hands
    any (m, r) to ``cook_toom`` and the fused pipeline trusts the result.
    """
    t = cook_toom(m, r)
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((t.alpha, t.alpha))
    g = rng.standard_normal((r, r))
    fast = t.transform_output(t.transform_filter(g) * t.transform_input(d))
    np.testing.assert_allclose(fast, _naive_2d_conv_tile(d, g, t), atol=1e-7)
