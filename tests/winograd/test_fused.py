"""The fused F(2×2,3×3) pipeline model (Algorithm 1) vs the oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    ConvConfigError,
    ConvProblem,
    LayoutError,
    conv_tolerance,
    kcrs_to_crsk,
    khwn_to_nkhw,
    make_rng,
    nchw_to_chwn,
    random_activation,
    random_filter,
)
from repro.convolution import direct_conv2d
from repro.winograd import (
    CUDNN_CONFIG,
    PAPER_CONFIG,
    BlockConfig,
    FusedWinogradConv,
)


def _run(prob, config=PAPER_CONFIG, seed=0):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    conv = FusedWinogradConv(config)
    y = khwn_to_nkhw(conv(nchw_to_chwn(x), kcrs_to_crsk(f)))
    ref = direct_conv2d(x, f)
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)
    return conv


def test_matches_direct_paper_shape():
    _run(ConvProblem(n=32, c=8, h=8, w=8, k=64))


def test_matches_direct_cudnn_config():
    _run(ConvProblem(n=32, c=8, h=8, w=8, k=32), CUDNN_CONFIG)


def test_irregular_everything():
    """C, K, tiles all off the blocking grid: masking must handle edges."""
    _run(ConvProblem(n=3, c=5, h=9, w=7, k=10))


def test_single_channel():
    _run(ConvProblem(n=1, c=1, h=4, w=4, k=1))


def test_large_k_multiple_kblocks():
    _run(ConvProblem(n=4, c=8, h=6, w=6, k=130))


@given(
    n=st.integers(1, 4),
    c=st.integers(1, 10),
    h=st.integers(3, 12),
    w=st.integers(3, 12),
    k=st.integers(1, 9),
)
@settings(max_examples=15, deadline=None)
def test_property_fused_matches_direct(n, c, h, w, k):
    _run(ConvProblem(n=n, c=c, h=h, w=w, k=k), seed=n + c + h + w + k)


# ---------------------------------------------------------------------------
# Block configuration invariants (Table 7, §3.3)
# ---------------------------------------------------------------------------
def test_paper_config_smem_budget():
    cfg = PAPER_CONFIG
    assert cfg.smem_filter_bytes == 32 * 1024
    assert cfg.smem_input_bytes == 16 * 1024
    assert cfg.smem_main_loop_bytes == 48 * 1024
    assert cfg.output_tiles_per_block == 2048


def test_paper_config_ffma_count():
    """1024 FFMAs per thread per bc-iteration (§4.2-§4.3)."""
    assert PAPER_CONFIG.ffma_per_thread_per_iter == 1024
    assert CUDNN_CONFIG.ffma_per_thread_per_iter == 512


def test_arithmetic_intensity_section_3_3():
    assert CUDNN_CONFIG.arithmetic_intensity() == pytest.approx(8.0)
    assert PAPER_CONFIG.arithmetic_intensity() == pytest.approx(32 / 3)
    gain = PAPER_CONFIG.arithmetic_intensity() / CUDNN_CONFIG.arithmetic_intensity()
    assert gain == pytest.approx(4 / 3)  # "+33%"


def test_block_config_rejects_nonpositive():
    with pytest.raises(ConvConfigError):
        BlockConfig(bk=0)


def test_block_config_rejects_nonpositive_threads():
    with pytest.raises(ConvConfigError):
        BlockConfig(threads=0)
    with pytest.raises(ConvConfigError):
        BlockConfig(threads=-32)


def test_block_config_rejects_threads_not_dividing_ffma_work():
    # 16·bk·bn·bc = 262144 at the paper's blocking; 96 does not divide it
    # and would make ffma_per_thread_per_iter lie (integer truncation).
    with pytest.raises(ConvConfigError):
        BlockConfig(threads=96)
    # Divisor counts stay accepted, and the accounting stays exact.
    assert BlockConfig(threads=128).ffma_per_thread_per_iter == 2048


# ---------------------------------------------------------------------------
# Stats and workload accounting
# ---------------------------------------------------------------------------
def test_run_stats_ffma_count():
    prob = ConvProblem(n=32, c=8, h=8, w=8, k=64)
    rng = make_rng(1)
    conv = FusedWinogradConv()
    x = nchw_to_chwn(random_activation(prob, rng))
    f_t = conv.transform_filters(kcrs_to_crsk(random_filter(prob, rng)))
    _, stats = conv.run(x, f_t, prob)
    # 16 EWMM points × K × total tiles × C multiply-accumulates.
    assert stats.ffma_total == 16 * 64 * prob.total_tiles(2) * 8
    assert stats.effective_flops == prob.direct_flops
    assert stats.grid_blocks == (prob.total_tiles(2) // 32) * 1
    assert stats.itf_fadd_total == 32 * prob.total_tiles(2) * 8


def test_workload_dict():
    prob = ConvProblem(n=32, c=64, h=56, w=56, k=64, name="Conv2N32")
    w = FusedWinogradConv().workload(prob)
    assert w["blocks"] == (28 * 28 * 32 // 32) * 1
    assert w["iters_per_block"] == 8
    assert w["ffma_per_thread_per_iter"] == 1024
    assert w["warps_per_block"] == 8
    assert w["smem_bytes_per_block"] == 48 * 1024


def test_transform_filters_layout():
    conv = FusedWinogradConv()
    f = np.zeros((5, 3, 3, 7), dtype=np.float32)
    out = conv.transform_filters(f)
    assert out.shape == (5, 4, 4, 7)


def test_transform_filters_rejects_bad_shape():
    with pytest.raises(LayoutError):
        FusedWinogradConv().transform_filters(np.zeros((5, 5, 5, 7), dtype=np.float32))


def test_fused_requires_f23_transform():
    from repro.winograd import get_transform

    with pytest.raises(ConvConfigError):
        FusedWinogradConv(transform=get_transform(4, 3))


def test_run_rejects_mismatched_filters():
    conv = FusedWinogradConv()
    with pytest.raises(LayoutError):
        conv.run(
            np.zeros((4, 8, 8, 2), dtype=np.float32),
            np.zeros((5, 4, 4, 8), dtype=np.float32),
        )


# ---------------------------------------------------------------------------
# F(4×4,3×3) tile: the fused model vs the oracle (§8.1, docs/winograd_tiles.md)
# ---------------------------------------------------------------------------
def test_fused_f44_matches_direct_small():
    prob = ConvProblem(n=2, c=4, h=9, w=9, k=8)
    rng = make_rng(13)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    conv = FusedWinogradConv(tile="f44")
    y = khwn_to_nkhw(conv(nchw_to_chwn(x), kcrs_to_crsk(f)))
    np.testing.assert_allclose(
        y, direct_conv2d(x, f), atol=conv_tolerance(prob) * 16
    )


def test_fused_f44_mismatched_transform_rejected():
    from repro.winograd import get_transform

    with pytest.raises(ConvConfigError):
        FusedWinogradConv(tile="f44", transform=get_transform(2, 3))


@pytest.mark.slow
@pytest.mark.parametrize("name", ["Conv2", "Conv3", "Conv4", "Conv5"])
def test_fused_f44_matches_reference_on_table1(name):
    """Table-1 sweep at N=32: fused F(4×4,3×3) vs the WINOGRAD_REFERENCE
    oracle.  Both sides use the identical Lavin & Gray f43 matrices; the
    only difference is the fused model's channel/K blocking, so the
    results must agree to reassociation round-off."""
    from repro.models import resnet_layer
    from repro.winograd import winograd_conv2d_nchw

    prob = resnet_layer(name, 32)
    rng = make_rng(17)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    conv = FusedWinogradConv(tile="f44")
    y = khwn_to_nkhw(conv(nchw_to_chwn(x), kcrs_to_crsk(f)))
    ref = winograd_conv2d_nchw(x, f, m=4, pad=prob.pad)
    assert y.shape == ref.shape == (prob.n, prob.k, prob.out_h, prob.out_w)
    scale = float(np.abs(ref).max())
    assert float(np.abs(y - ref).max()) / scale < 2e-5
