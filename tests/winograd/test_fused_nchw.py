"""The §8.4 NCHW-layout port of the fused pipeline."""

import numpy as np
import pytest

from repro.common import (
    ConvProblem,
    conv_tolerance,
    kcrs_to_crsk,
    make_rng,
    random_activation,
    random_filter,
)
from repro.convolution import direct_conv2d
from repro.winograd.fused_nchw import (
    FusedWinogradConvNCHW,
    warp_load_sectors,
)


def _run(prob, seed=0):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    conv = FusedWinogradConvNCHW()
    f_t = conv.transform_filters(kcrs_to_crsk(f))
    y = conv.run_nchw(x, f_t, prob)
    np.testing.assert_allclose(
        y, direct_conv2d(x, f), atol=conv_tolerance(prob) * 4
    )


def test_matches_direct_exact_patch():
    # 16×8 output = exactly one 8×4 tile patch.
    _run(ConvProblem(n=2, c=8, h=16, w=8, k=64))


def test_matches_direct_ragged_patches():
    _run(ConvProblem(n=2, c=8, h=14, w=10, k=16))


def test_matches_direct_small_image():
    _run(ConvProblem(n=3, c=4, h=7, w=7, k=8))


def test_matches_direct_multi_kblock():
    _run(ConvProblem(n=1, c=8, h=16, w=8, k=96))


def test_same_results_as_chwn_pipeline():
    from repro.common import chwn_to_nchw, khwn_to_nkhw, nchw_to_chwn
    from repro.winograd import FusedWinogradConv

    prob = ConvProblem(n=2, c=8, h=16, w=8, k=32)
    rng = make_rng(5)
    x = random_activation(prob, rng)
    f_crsk = kcrs_to_crsk(random_filter(prob, rng))
    nchw_conv = FusedWinogradConvNCHW()
    f_t = nchw_conv.transform_filters(f_crsk)
    y_nchw = nchw_conv.run_nchw(x, f_t, prob)
    y_chwn = khwn_to_nkhw(FusedWinogradConv()(nchw_to_chwn(x), f_crsk))
    np.testing.assert_allclose(y_nchw, y_chwn, atol=1e-5)


# ---------------------------------------------------------------------------
# The coalescing argument (§8.4 / §4.2)
# ---------------------------------------------------------------------------
PROB = ConvProblem(n=32, c=64, h=56, w=56, k=64, name="Conv2N32")


def test_matched_mappings_fully_coalesce():
    """Each warp load = 128 consecutive bytes = 4 sectors (CHWN);
    the NCHW patch keeps the accesses within dense image rows (≤ 2
    sectors per patch row vs. one full sector per lane mismatched)."""
    assert warp_load_sectors(PROB, "CHWN", "batch") == 4
    assert warp_load_sectors(PROB, "NCHW", "patch") <= 16


def test_mismatched_mappings_scatter():
    """The §8.4 point: keep the mapping matched to the layout."""
    # Batch-fastest tiles in NCHW: 32 different images → 32 sectors.
    assert warp_load_sectors(PROB, "NCHW", "batch") == 32
    # Patch tiles in CHWN: every pixel lands N floats apart → 32 sectors.
    assert warp_load_sectors(PROB, "CHWN", "patch") == 32


def test_bad_arguments():
    from repro.common import LayoutError

    with pytest.raises(LayoutError):
        warp_load_sectors(PROB, "NHWC", "batch")
    with pytest.raises(LayoutError):
        warp_load_sectors(PROB, "CHWN", "spiral")
