"""TileSpec — the frozen F(m×m, r×r) family descriptors (docs/winograd_tiles.md)."""

import dataclasses

import numpy as np
import pytest

from repro.common import ConvConfigError
from repro.winograd import TILE_F22, TILE_F44, TILE_FAMILIES, TileSpec, get_tile
from repro.winograd.transforms import f23, f43


def test_f22_geometry():
    assert (TILE_F22.m, TILE_F22.r) == (2, 3)
    assert TILE_F22.alpha == 4
    assert TILE_F22.elements == 16
    assert TILE_F22.mask_words == 1  # one P2R register (§3.5)
    assert TILE_F22.reduction_2d() == pytest.approx(2.25)
    assert (TILE_F22.bk, TILE_F22.bn, TILE_F22.bc) == (64, 32, 8)
    assert TILE_F22.label() == "F(2x2,3x3)"


def test_f44_geometry():
    assert (TILE_F44.m, TILE_F44.r) == (4, 3)
    assert TILE_F44.alpha == 6
    assert TILE_F44.elements == 36
    assert TILE_F44.mask_words == 2  # 36 predicate bits span two words
    assert TILE_F44.reduction_2d() == pytest.approx(4.0)
    # the best feasible blocking from perfmodel.f44_study
    assert (TILE_F44.bk, TILE_F44.bn, TILE_F44.bc) == (16, 32, 8)
    assert TILE_F44.label() == "F(4x4,3x3)"


def test_get_tile_resolution():
    assert get_tile() is TILE_F22
    assert get_tile(None) is TILE_F22
    assert get_tile("f22") is TILE_F22
    assert get_tile("f44") is TILE_F44
    assert get_tile(TILE_F44) is TILE_F44
    custom = TileSpec(m=6, r=3, name="f66", bk=8, bn=16, bc=4)
    assert get_tile(custom) is custom


def test_get_tile_rejects_unknown_family():
    with pytest.raises(ConvConfigError, match="unknown tile family"):
        get_tile("f88")


def test_registry_is_consistent():
    assert set(TILE_FAMILIES) == {"f22", "f44"}
    for name, spec in TILE_FAMILIES.items():
        assert spec.name == name


def test_transform_returns_published_matrices():
    t22 = TILE_F22.transform()
    np.testing.assert_array_equal(t22.at, f23().at)
    np.testing.assert_array_equal(t22.bt, f23().bt)
    t44 = TILE_F44.transform()
    np.testing.assert_array_equal(t44.g, f43().g)
    assert t44.alpha == TILE_F44.alpha


def test_transform_matches_tile_geometry():
    spec = TileSpec(m=3, r=3, name="f33", bk=16, bn=32, bc=8)
    t = spec.transform(np.float64)
    assert (t.m, t.r) == (3, 3)
    assert spec.elements == t.alpha * t.alpha
    assert spec.mask_words == 1  # 25 bits still fit one word


def test_tiles_along_is_ceil_div():
    assert TILE_F22.tiles_along(8) == 4
    assert TILE_F22.tiles_along(7) == 4
    assert TILE_F44.tiles_along(8) == 2
    assert TILE_F44.tiles_along(7) == 2
    assert TILE_F44.tiles_along(1) == 1


def test_spec_is_frozen_and_hashable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        TILE_F22.m = 4
    book = {TILE_F22: "a", TILE_F44: "b"}
    assert book[TileSpec(m=2, r=3, name="f22", bk=64, bn=32, bc=8)] == "a"


def test_validation_rejects_bad_specs():
    with pytest.raises(ConvConfigError):
        TileSpec(m=0, r=3, name="bad", bk=1, bn=1, bc=1)
    with pytest.raises(ConvConfigError):
        TileSpec(m=2, r=3, name="bad", bk=0, bn=32, bc=8)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
