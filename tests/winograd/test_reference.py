"""Reference Winograd convolution vs direct convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    ConvConfigError,
    ConvProblem,
    LayoutError,
    conv_tolerance,
    make_rng,
    random_activation,
    random_filter,
)
from repro.convolution import direct_conv2d
from repro.winograd import winograd_conv2d_nchw


def _check(prob, m, seed=0):
    rng = make_rng(seed)
    x = random_activation(prob, rng)
    f = random_filter(prob, rng)
    y = winograd_conv2d_nchw(x, f, m=m, pad=prob.pad)
    ref = direct_conv2d(x, f, pad=prob.pad)
    assert y.shape == ref.shape
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)


@pytest.mark.parametrize("m", [2, 4, 6])
def test_against_direct_square(m):
    _check(ConvProblem(n=2, c=3, h=12, w=12, k=4), m)


@pytest.mark.parametrize("m", [2, 4])
def test_against_direct_odd_sizes(m):
    _check(ConvProblem(n=2, c=3, h=9, w=7, k=4), m)


def test_tiny_image_smaller_than_tile():
    _check(ConvProblem(n=1, c=2, h=3, w=3, k=2), 4)


def test_no_padding():
    _check(ConvProblem(n=1, c=2, h=8, w=8, k=2, pad=0), 2)


def test_single_everything():
    _check(ConvProblem(n=1, c=1, h=4, w=4, k=1), 2)


def test_resnet_conv5_shape():
    _check(ConvProblem(n=4, c=8, h=7, w=7, k=8), 2)


def test_channel_mismatch_raises():
    x = np.zeros((1, 3, 8, 8), dtype=np.float32)
    f = np.zeros((2, 4, 3, 3), dtype=np.float32)
    with pytest.raises(ConvConfigError):
        winograd_conv2d_nchw(x, f)


def test_nonsquare_filter_raises():
    x = np.zeros((1, 3, 8, 8), dtype=np.float32)
    f = np.zeros((2, 3, 3, 5), dtype=np.float32)
    with pytest.raises(ConvConfigError):
        winograd_conv2d_nchw(x, f)


def test_bad_rank_raises():
    with pytest.raises(LayoutError):
        winograd_conv2d_nchw(
            np.zeros((3, 8, 8), dtype=np.float32),
            np.zeros((2, 3, 3, 3), dtype=np.float32),
        )


@given(
    n=st.integers(1, 3),
    c=st.integers(1, 5),
    h=st.integers(3, 14),
    w=st.integers(3, 14),
    k=st.integers(1, 5),
    m=st.sampled_from([2, 4]),
)
@settings(max_examples=25, deadline=None)
def test_property_matches_direct(n, c, h, w, k, m):
    prob = ConvProblem(n=n, c=c, h=h, w=w, k=k)
    _check(prob, m, seed=n * 1000 + h * 10 + w)
