"""Direct conv (oracle pair) and GEMM-based algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    ConvConfigError,
    ConvProblem,
    LayoutError,
    make_rng,
    random_activation,
    random_filter,
)
from repro.convolution import (
    direct_conv2d,
    direct_conv2d_naive,
    gemm_conv2d,
    im2col,
    implicit_gemm_conv2d,
)


def _data(prob, seed=0):
    rng = make_rng(seed)
    return random_activation(prob, rng), random_filter(prob, rng)


def test_naive_equals_vectorized():
    prob = ConvProblem(n=2, c=3, h=5, w=6, k=4)
    x, f = _data(prob)
    np.testing.assert_allclose(
        direct_conv2d_naive(x, f), direct_conv2d(x, f), atol=1e-5
    )


def test_naive_hand_example():
    """3×3 all-ones filter over all-ones 3×3 input, pad 1: center = 9."""
    x = np.ones((1, 1, 3, 3), dtype=np.float32)
    f = np.ones((1, 1, 3, 3), dtype=np.float32)
    y = direct_conv2d_naive(x, f)
    assert y[0, 0, 1, 1] == 9
    assert y[0, 0, 0, 0] == 4  # corner sees a 2×2 patch
    assert y[0, 0, 0, 1] == 6  # edge sees a 2×3 patch


def test_direct_channel_mismatch():
    with pytest.raises(ConvConfigError):
        direct_conv2d(
            np.zeros((1, 3, 4, 4), dtype=np.float32),
            np.zeros((1, 2, 3, 3), dtype=np.float32),
        )


def test_direct_bad_rank():
    with pytest.raises(LayoutError):
        direct_conv2d(np.zeros((3, 4, 4)), np.zeros((1, 3, 3, 3)))


# ---------------------------------------------------------------------------
# im2col lowering
# ---------------------------------------------------------------------------
def test_im2col_shape_and_content():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    cols = im2col(x, 3, 3, pad=1)
    assert cols.shape == (16, 9)
    # Patch of output pixel (1,1) is the top-left 3×3 of the input.
    np.testing.assert_array_equal(cols[5], x[0, 0, :3, :3].ravel())
    # Corner patch has the pad zeros.
    assert cols[0, 0] == 0 and cols[0, 4] == x[0, 0, 0, 0]


def test_gemm_matches_direct():
    prob = ConvProblem(n=2, c=3, h=6, w=7, k=5)
    x, f = _data(prob)
    y, stats = gemm_conv2d(x, f)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-5)
    assert stats.workspace_bytes == prob.n * prob.out_h * prob.out_w * prob.c * 9 * 4
    assert stats.gemm_m == prob.n * prob.out_h * prob.out_w
    assert stats.gemm_n == prob.k
    assert stats.gemm_k == prob.c * 9
    assert stats.gemm_flops == 2 * stats.gemm_m * stats.gemm_n * stats.gemm_k


@pytest.mark.parametrize("precomp", [True, False])
def test_implicit_gemm_matches_direct(precomp):
    prob = ConvProblem(n=2, c=3, h=6, w=5, k=4)
    x, f = _data(prob)
    y, stats = implicit_gemm_conv2d(x, f, precomputed_offsets=precomp)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-5)
    if precomp:
        assert stats.workspace_bytes == prob.c * 9 * 4  # tiny offset table
    else:
        assert stats.workspace_bytes == 0


def test_implicit_gemm_tiling_boundary():
    """Exercise the tile loop with a tile size that doesn't divide rows."""
    prob = ConvProblem(n=1, c=2, h=5, w=5, k=3)
    x, f = _data(prob)
    y, _ = implicit_gemm_conv2d(x, f, tile_m=7)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-5)


@given(
    n=st.integers(1, 3),
    c=st.integers(1, 4),
    h=st.integers(3, 9),
    w=st.integers(3, 9),
    k=st.integers(1, 4),
)
@settings(max_examples=20, deadline=None)
def test_property_gemm_vs_direct(n, c, h, w, k):
    prob = ConvProblem(n=n, c=c, h=h, w=w, k=k)
    x, f = _data(prob, seed=h * w)
    y, _ = gemm_conv2d(x, f)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-4)
