"""The autotuning dispatcher: plan cache, workspace limits, metrics."""

import numpy as np
import pytest

from repro.common import (
    ConvConfigError,
    ConvProblem,
    conv_tolerance,
    make_rng,
    random_activation,
    random_filter,
)
from repro.convolution import (
    clear_plan_cache,
    conv2d,
    get_algorithm,
    get_dispatch_stats,
    get_plan_cache,
    reset_dispatch_stats,
)
from repro.gpusim import RTX2070, V100
from repro.perfmodel import (
    DISPATCH_CANDIDATES,
    algorithm_supports,
    dispatch_workspace_bytes,
    predicted_time,
    rank_algorithms,
)


@pytest.fixture(autouse=True)
def _fresh_dispatcher():
    reset_dispatch_stats()
    clear_plan_cache()
    yield
    reset_dispatch_stats()
    clear_plan_cache()


def _data(prob, seed=0):
    rng = make_rng(seed)
    return random_activation(prob, rng), random_filter(prob, rng)


# ---------------------------------------------------------------------------
# Selection model (perfmodel.selection)
# ---------------------------------------------------------------------------
def test_rank_orders_by_predicted_time_direct_last():
    prob = ConvProblem(n=4, c=16, h=14, w=14, k=32)
    ranked, excluded = rank_algorithms(prob, V100)
    assert not excluded
    assert ranked[-1] == "DIRECT"
    times = [predicted_time(prob, V100, a) for a in ranked[:-1]]
    assert times == sorted(times)


def test_rank_workspace_budget_excludes():
    prob = ConvProblem(n=4, c=16, h=14, w=14, k=32)
    ranked, excluded = rank_algorithms(prob, V100, workspace_limit_bytes=0)
    assert set(ranked) == {"IMPLICIT_GEMM", "DIRECT"}
    assert "FFT" in excluded and "workspace" in excluded["FFT"]
    for algo in ranked:
        assert dispatch_workspace_bytes(prob, algo) == 0


def test_rank_structural_exclusion_5x5():
    prob = ConvProblem(n=1, c=4, h=10, w=10, k=4, r=5, s=5, pad=2)
    ranked, excluded = rank_algorithms(prob, RTX2070)
    assert "WINOGRAD" not in ranked and "WINOGRAD_NONFUSED" not in ranked
    assert not algorithm_supports("WINOGRAD", prob)
    assert "unsupported" in excluded["WINOGRAD"]
    assert ranked[-1] == "DIRECT"


def test_every_candidate_has_workspace_and_time_models():
    prob = ConvProblem(n=2, c=8, h=8, w=8, k=8)
    for algo in DISPATCH_CANDIDATES:
        assert dispatch_workspace_bytes(prob, algo) >= 0
        assert predicted_time(prob, V100, algo) > 0


# ---------------------------------------------------------------------------
# AUTO: trials + plan cache
# ---------------------------------------------------------------------------
def test_auto_matches_reference_and_caches():
    prob = ConvProblem(n=2, c=8, h=12, w=10, k=6)
    x, f = _data(prob, seed=7)
    ref = conv2d(x, f, algo="WINOGRAD_REFERENCE")

    y = conv2d(x, f, algo="AUTO")
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)
    first = get_dispatch_stats()
    assert first.cache_misses == 1 and first.cache_hits == 0
    assert first.trials_run > 0

    y2 = conv2d(x, f, algo="AUTO")
    np.testing.assert_allclose(y2, ref, atol=conv_tolerance(prob) * 4)
    second = get_dispatch_stats()
    assert second.cache_hits == 1
    assert second.trials_run == first.trials_run  # zero new trials on a hit
    assert second.hit_rate == 0.5

    (plan,) = get_plan_cache().values()
    assert plan.source == "measured"
    assert plan.hits == 1
    assert plan.algo in plan.trial_times
    assert sum(second.chosen.values()) == 1  # chosen counted once per miss


def test_auto_trials_cover_all_eligible_algorithms():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO")
    stats = get_dispatch_stats()
    # All 8 concrete candidates run a trial on a 3×3/pad-1 shape.
    assert sorted(stats.trial_times) == sorted(DISPATCH_CANDIDATES)
    assert stats.trials_run == len(DISPATCH_CANDIDATES)


def test_auto_distinct_signatures_miss_separately():
    p1 = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    p2 = ConvProblem(n=2, c=4, h=8, w=8, k=4)  # batch differs → new key
    x1, f1 = _data(p1)
    x2, f2 = _data(p2)
    conv2d(x1, f1, algo="AUTO")
    conv2d(x2, f2, algo="AUTO")
    stats = get_dispatch_stats()
    assert stats.cache_misses == 2 and stats.cache_hits == 0
    assert len(get_plan_cache()) == 2


def test_auto_workspace_limit_zero_still_correct():
    prob = ConvProblem(n=2, c=6, h=9, w=9, k=5)
    x, f = _data(prob, seed=3)
    y = conv2d(x, f, algo="AUTO", workspace_limit_bytes=0)
    np.testing.assert_allclose(
        y, conv2d(x, f, algo="DIRECT"), atol=conv_tolerance(prob) * 4
    )
    (plan,) = get_plan_cache().values()
    assert plan.algo in ("IMPLICIT_GEMM", "DIRECT")
    stats = get_dispatch_stats()
    assert stats.excluded.get("FFT") == 1
    assert stats.excluded.get("WINOGRAD") == 1  # 0.25 MB filter workspace


def test_auto_workspace_limit_is_part_of_the_key():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO")
    conv2d(x, f, algo="AUTO", workspace_limit_bytes=0)
    assert get_dispatch_stats().cache_misses == 2


def test_auto_5x5_falls_through_winograd():
    """The fused kernel can't run 5×5; the dispatcher must still answer."""
    prob = ConvProblem(n=1, c=3, h=10, w=10, k=2, r=5, s=5, pad=2)
    x, f = _data(prob, seed=11)
    y = conv2d(x, f, pad=2, algo="AUTO")
    np.testing.assert_allclose(
        y, conv2d(x, f, pad=2, algo="DIRECT"), atol=conv_tolerance(prob) * 4
    )
    stats = get_dispatch_stats()
    assert stats.excluded.get("WINOGRAD") == 1
    assert stats.excluded.get("WINOGRAD_NONFUSED") == 1
    (plan,) = get_plan_cache().values()
    assert plan.algo not in ("WINOGRAD", "WINOGRAD_NONFUSED")


def test_negative_workspace_limit_rejected():
    prob = ConvProblem(n=1, c=2, h=6, w=6, k=2)
    x, f = _data(prob)
    with pytest.raises(ConvConfigError):
        conv2d(x, f, algo="AUTO", workspace_limit_bytes=-1)


def test_workspace_limit_rejected_for_explicit_algo():
    prob = ConvProblem(n=1, c=2, h=6, w=6, k=2)
    x, f = _data(prob)
    with pytest.raises(ConvConfigError):
        conv2d(x, f, algo="GEMM", workspace_limit_bytes=1 << 20)


# ---------------------------------------------------------------------------
# AUTO_HEURISTIC: model-driven, no trials
# ---------------------------------------------------------------------------
def test_heuristic_runs_zero_trials():
    prob = ConvProblem(n=2, c=8, h=12, w=12, k=8)
    x, f = _data(prob, seed=5)
    y = conv2d(x, f, algo="AUTO_HEURISTIC")
    np.testing.assert_allclose(
        y, conv2d(x, f, algo="WINOGRAD_REFERENCE"), atol=conv_tolerance(prob) * 4
    )
    stats = get_dispatch_stats()
    assert stats.trials_run == 0
    (plan,) = get_plan_cache().values()
    assert plan.source == "heuristic"
    assert plan.predicted_times  # the ranking that justified the choice


def test_heuristic_device_affects_the_key():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO_HEURISTIC", device=V100)
    conv2d(x, f, algo="AUTO_HEURISTIC", device=RTX2070)
    assert get_dispatch_stats().cache_misses == 2


def test_heuristic_and_auto_have_separate_plans():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO_HEURISTIC")
    conv2d(x, f, algo="AUTO")
    stats = get_dispatch_stats()
    assert stats.cache_misses == 2
    assert stats.calls_by_mode == {"AUTO_HEURISTIC": 1, "AUTO": 1}


# ---------------------------------------------------------------------------
# Satellite: cross-algorithm agreement on non-square / asymmetric tails,
# driven through AUTO so every eligible algorithm is exercised.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "prob",
    [
        ConvProblem(n=2, c=5, h=9, w=7, k=6),    # H≠W, both tails odd
        ConvProblem(n=1, c=8, h=11, w=6, k=4),   # odd H tail, even W
        ConvProblem(n=3, c=4, h=6, w=13, k=5),   # tail only along W
        ConvProblem(n=2, c=7, h=5, w=5, k=9),    # tiny, both dims tailed
    ],
    ids=lambda p: f"{p.h}x{p.w}",
)
def test_auto_trials_agree_on_nonsquare_tails(prob):
    x, f = _data(prob, seed=prob.h * 100 + prob.w)
    ref = conv2d(x, f, algo="WINOGRAD_REFERENCE")
    y = conv2d(x, f, algo="AUTO")
    np.testing.assert_allclose(y, ref, atol=conv_tolerance(prob) * 4)
    stats = get_dispatch_stats()
    # Every structurally eligible algorithm ran a trial; the winner's
    # output was returned, so each trial's correctness is load-bearing —
    # verify them all explicitly against the oracle.
    assert sorted(stats.trial_times) == sorted(DISPATCH_CANDIDATES)
    for algo in stats.trial_times:
        np.testing.assert_allclose(
            conv2d(x, f, algo=algo),
            ref,
            atol=conv_tolerance(prob) * 8,
            err_msg=algo,
        )


# ---------------------------------------------------------------------------
# Metrics API
# ---------------------------------------------------------------------------
def test_stats_snapshot_is_independent():
    prob = ConvProblem(n=1, c=2, h=6, w=6, k=2)
    x, f = _data(prob)
    before = get_dispatch_stats()
    conv2d(x, f, algo="AUTO")
    assert before.calls == 0  # snapshot unaffected by later dispatches
    after = get_dispatch_stats()
    after.trial_times.clear()
    assert get_dispatch_stats().trial_times  # live stats unaffected


def test_reset_dispatch_stats():
    prob = ConvProblem(n=1, c=2, h=6, w=6, k=2)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO")
    assert get_dispatch_stats().calls == 1
    reset_dispatch_stats()
    stats = get_dispatch_stats()
    assert stats.calls == 0 and stats.trials_run == 0 and stats.hit_rate == 0.0


def test_get_algorithm_auto_curried():
    prob = ConvProblem(n=1, c=2, h=6, w=6, k=2)
    x, f = _data(prob)
    fn = get_algorithm("AUTO")
    assert fn.__name__ == "conv2d_auto"
    np.testing.assert_allclose(
        fn(x, f), conv2d(x, f, algo="DIRECT"), atol=conv_tolerance(prob) * 4
    )
