"""FFT algorithms and the unified dispatcher."""

import numpy as np
import pytest

from repro.common import ConvConfigError, ConvProblem, make_rng, random_activation, random_filter
from repro.convolution import (
    ALGORITHMS,
    conv2d,
    direct_conv2d,
    fft_conv2d,
    fft_tiling_conv2d,
    get_algorithm,
)


def _data(prob, seed=0):
    rng = make_rng(seed)
    return random_activation(prob, rng), random_filter(prob, rng)


def test_fft_matches_direct():
    prob = ConvProblem(n=2, c=3, h=8, w=9, k=4)
    x, f = _data(prob)
    y, stats = fft_conv2d(x, f)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-4)
    assert stats.workspace_bytes > 0


def test_fft_is_correlation_not_convolution():
    """CNN conv = correlation: an asymmetric filter must not be flipped."""
    x = np.zeros((1, 1, 5, 5), dtype=np.float32)
    x[0, 0, 2, 2] = 1.0
    f = np.zeros((1, 1, 3, 3), dtype=np.float32)
    f[0, 0, 0, 2] = 1.0  # top-right tap
    y, _ = fft_conv2d(x, f)
    ref = direct_conv2d(x, f)
    np.testing.assert_allclose(y, ref, atol=1e-5)
    # Correlation: O[h,w] = I[h+r−1, w+s−1]·F[r,s] → impulse lands at (3,1).
    assert ref[0, 0, 3, 1] == 1.0


def test_fft_tiling_matches_direct_multiple_tiles():
    prob = ConvProblem(n=1, c=2, h=40, w=36, k=3)
    x, f = _data(prob)
    y, stats = fft_tiling_conv2d(x, f, tile=16)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-4)
    assert stats.tiles == 9  # ceil(40/16)·ceil(36/16)
    assert stats.fft_size == (32, 32)  # next pow2 of 16+2


def test_fft_tiling_single_tile():
    prob = ConvProblem(n=1, c=1, h=6, w=6, k=1)
    x, f = _data(prob)
    y, stats = fft_tiling_conv2d(x, f, tile=32)
    np.testing.assert_allclose(y, direct_conv2d(x, f), atol=1e-5)
    assert stats.tiles == 1


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------
def test_all_algorithms_agree():
    prob = ConvProblem(n=3, c=5, h=9, w=7, k=6)
    x, f = _data(prob, seed=7)
    ref = conv2d(x, f, algo="DIRECT")
    for algo in ALGORITHMS:
        y = conv2d(x, f, algo=algo)
        np.testing.assert_allclose(y, ref, atol=5e-5, err_msg=algo)


def test_unknown_algorithm():
    x = np.zeros((1, 1, 4, 4), dtype=np.float32)
    f = np.zeros((1, 1, 3, 3), dtype=np.float32)
    with pytest.raises(ConvConfigError):
        conv2d(x, f, algo="MAGIC")


def test_algo_case_insensitive():
    prob = ConvProblem(n=1, c=1, h=4, w=4, k=1)
    x, f = _data(prob)
    np.testing.assert_allclose(
        conv2d(x, f, algo="winograd"), conv2d(x, f, algo="WINOGRAD")
    )


def test_winograd_paths_reject_5x5():
    x = np.zeros((1, 1, 8, 8), dtype=np.float32)
    f = np.zeros((1, 1, 5, 5), dtype=np.float32)
    with pytest.raises(ConvConfigError):
        conv2d(x, f, pad=2, algo="WINOGRAD")


def test_get_algorithm_curried():
    prob = ConvProblem(n=1, c=2, h=5, w=5, k=2)
    x, f = _data(prob)
    fn = get_algorithm("GEMM")
    assert fn.__name__ == "conv2d_gemm"
    np.testing.assert_allclose(fn(x, f), conv2d(x, f, algo="GEMM"))


def test_get_algorithm_carries_metadata():
    fn = get_algorithm("fft")
    assert fn.__name__ == "conv2d_fft"
    assert fn.__qualname__ == "conv2d_fft"
    assert fn.__doc__ and "FFT" in fn.__doc__
    assert fn.algo == "FFT"
    assert fn.__wrapped__ is conv2d


def test_get_algorithm_rejects_unknown_eagerly():
    with pytest.raises(ConvConfigError):
        get_algorithm("MAGIC")


# ---------------------------------------------------------------------------
# Input validation (errors raised at the call site, not deep in NumPy)
# ---------------------------------------------------------------------------
def test_conv2d_rejects_non_4d_input():
    f = np.zeros((2, 3, 3, 3), dtype=np.float32)
    with pytest.raises(ConvConfigError, match="4-D NCHW"):
        conv2d(np.zeros((3, 8, 8), dtype=np.float32), f)
    with pytest.raises(ConvConfigError, match="4-D KCRS"):
        conv2d(
            np.zeros((1, 3, 8, 8), dtype=np.float32),
            np.zeros((3, 3, 3), dtype=np.float32),
        )


def test_conv2d_rejects_channel_mismatch_with_shapes_in_message():
    x = np.zeros((1, 4, 8, 8), dtype=np.float32)
    f = np.zeros((2, 3, 3, 3), dtype=np.float32)
    with pytest.raises(ConvConfigError, match=r"C=4.*C=3") as exc:
        conv2d(x, f)
    assert "(1, 4, 8, 8)" in str(exc.value) and "(2, 3, 3, 3)" in str(exc.value)


def test_conv2d_rejects_negative_pad():
    x = np.zeros((1, 2, 8, 8), dtype=np.float32)
    f = np.zeros((2, 2, 3, 3), dtype=np.float32)
    with pytest.raises(ConvConfigError, match="pad"):
        conv2d(x, f, pad=-1)
    with pytest.raises(ConvConfigError, match="pad"):
        conv2d(x, f, pad=1.5)


def test_conv2d_rejects_oversized_filter():
    x = np.zeros((1, 2, 4, 4), dtype=np.float32)
    f = np.zeros((2, 2, 7, 7), dtype=np.float32)
    with pytest.raises(ConvConfigError, match="does not fit"):
        conv2d(x, f, pad=0, algo="DIRECT")
