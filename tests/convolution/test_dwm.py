"""Decomposable Winograd Method: large / strided filters as F(m,3) parts."""

import numpy as np
import pytest

from repro.common import ConvConfigError, make_rng
from repro.convolution import (
    conv2d,
    direct_conv2d,
    dwm_conv2d,
    dwm_conv2d_with_plan,
    dwm_plan,
)


def _data(n, c, h, w, k, r, seed=0):
    rng = make_rng(seed)
    x = rng.standard_normal((n, c, h, w)).astype(np.float32)
    f = (rng.standard_normal((k, c, r, r)) / (r * r)).astype(np.float32)
    return x, f


# ---------------------------------------------------------------------------
# Plan structure
# ---------------------------------------------------------------------------
def test_plan_native_3x3_is_trivial():
    plan = dwm_plan(3, 3, pad=1, stride=1)
    assert plan.is_trivial
    assert plan.num_parts == 1
    (part,) = plan.parts
    assert (part.rows, part.cols) == (3, 3)


def test_plan_5x5_splits_into_four_chunks():
    plan = dwm_plan(5, 5, pad=2, stride=1)
    assert not plan.is_trivial
    assert plan.num_parts == 4
    sizes = sorted((p.rows, p.cols) for p in plan.parts)
    assert sizes == [(2, 2), (2, 3), (3, 2), (3, 3)]


def test_plan_3x3_stride2_is_polyphase():
    plan = dwm_plan(3, 3, pad=1, stride=2)
    assert plan.num_parts == 4
    phases = {p.phase for p in plan.parts}
    assert phases == {(0, 0), (0, 1), (1, 0), (1, 1)}
    sizes = sorted((p.rows, p.cols) for p in plan.parts)
    assert sizes == [(1, 1), (1, 2), (2, 1), (2, 2)]


def test_plan_7x7_stride2_composes_both_rules():
    # each stride phase is <= 4 wide, which then splits into <= 3 chunks
    plan = dwm_plan(7, 7, pad=3, stride=2)
    assert plan.num_parts == 9
    assert all(p.rows <= 3 and p.cols <= 3 for p in plan.parts)
    assert "DWM(7x7" in plan.label()


def test_plan_rejects_bad_shapes():
    with pytest.raises(ConvConfigError):
        dwm_plan(0, 3, pad=1)
    with pytest.raises(ConvConfigError):
        dwm_plan(3, 3, pad=1, stride=3)


# ---------------------------------------------------------------------------
# Numerics vs direct convolution
# ---------------------------------------------------------------------------
def test_5x5_pad2_matches_direct():
    x, f = _data(2, 4, 12, 12, 8, r=5)
    y = dwm_conv2d(x, f, pad=2)
    ref = direct_conv2d(x, f, pad=2)
    np.testing.assert_allclose(y, ref, atol=2e-4)
    assert y.shape == ref.shape


def test_3x3_stride2_matches_direct():
    x, f = _data(2, 4, 11, 11, 8, r=3, seed=1)
    y, plan = dwm_conv2d_with_plan(x, f, pad=1, stride=2)
    ref = direct_conv2d(x, f, pad=1, stride=2)
    assert plan.num_parts == 4
    np.testing.assert_allclose(y, ref, atol=2e-4)


def test_5x5_stride2_matches_direct():
    x, f = _data(1, 3, 14, 14, 4, r=5, seed=2)
    y = dwm_conv2d(x, f, pad=2, stride=2)
    ref = direct_conv2d(x, f, pad=2, stride=2)
    np.testing.assert_allclose(y, ref, atol=2e-4)


def test_7x7_matches_direct():
    x, f = _data(1, 2, 15, 15, 3, r=7, seed=3)
    y = dwm_conv2d(x, f, pad=3)
    ref = direct_conv2d(x, f, pad=3)
    np.testing.assert_allclose(y, ref, atol=2e-4)


def test_parts_run_on_f44_tile_too():
    x, f = _data(2, 4, 12, 12, 8, r=5, seed=4)
    ref = direct_conv2d(x, f, pad=2)
    np.testing.assert_allclose(
        dwm_conv2d(x, f, pad=2, tile="f44"), ref, atol=5e-4
    )


def test_rejects_rectangular_filters():
    rng = make_rng(0)
    x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
    f = rng.standard_normal((3, 2, 5, 3)).astype(np.float32)
    with pytest.raises(ConvConfigError):
        dwm_conv2d(x, f, pad=1)


# ---------------------------------------------------------------------------
# conv2d dispatch integration
# ---------------------------------------------------------------------------
def test_conv2d_dwm_algo_and_stride_gate():
    x, f = _data(2, 4, 11, 11, 8, r=3, seed=5)
    y = conv2d(x, f, pad=1, stride=2, algo="WINOGRAD_DWM")
    np.testing.assert_allclose(
        y, direct_conv2d(x, f, pad=1, stride=2), atol=2e-4
    )
    # stride 2 through a stride-1-only algorithm is a config error that
    # points at the DWM path
    with pytest.raises(ConvConfigError, match="WINOGRAD_DWM"):
        conv2d(x, f, pad=1, stride=2, algo="WINOGRAD")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
