"""Plan-cache integrity: snapshot isolation, copy-on-heal, bounds, threads."""

import concurrent.futures

import numpy as np
import pytest

from repro.common import (
    ConvConfigError,
    ConvProblem,
    ReproError,
    conv_tolerance,
    make_rng,
    random_activation,
    random_filter,
)
from repro.convolution import (
    TRIAL_HISTORY_CAP,
    clear_plan_cache,
    conv2d,
    get_dispatch_stats,
    get_plan_cache,
    reset_dispatch_stats,
    set_plan_cache_limit,
)
from repro.convolution import autotune
from repro.convolution.metrics import DispatchStats


@pytest.fixture(autouse=True)
def _fresh_dispatcher():
    reset_dispatch_stats()
    clear_plan_cache()
    yield
    reset_dispatch_stats()
    clear_plan_cache()
    set_plan_cache_limit(256)


def _data(prob, seed=0):
    rng = make_rng(seed)
    return random_activation(prob, rng), random_filter(prob, rng)


def _fail_algos(monkeypatch, algos):
    """Make ``_execute`` raise for the given algorithms."""
    real = autotune._execute

    def failing(algo, x, f, pad, stride=1):
        if algo in algos:
            raise ReproError(f"injected failure for {algo}")
        return real(algo, x, f, pad, stride)

    monkeypatch.setattr(autotune, "_execute", failing)


# ---------------------------------------------------------------------------
# Snapshot isolation and copy-on-heal
# ---------------------------------------------------------------------------
def test_snapshot_survives_later_heal(monkeypatch):
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO_HEURISTIC")
    before = get_plan_cache()
    (plan_before,) = before.values()
    original_algo = plan_before.algo
    assert plan_before.fallbacks  # something to promote

    # The chosen algorithm starts raising: the dispatcher must heal the
    # cached plan without touching the snapshot taken above.
    _fail_algos(monkeypatch, {original_algo})
    y = conv2d(x, f, algo="AUTO_HEURISTIC")
    np.testing.assert_allclose(
        y, conv2d(x, f, algo="DIRECT"), atol=conv_tolerance(prob) * 4
    )

    assert plan_before.algo == original_algo
    assert plan_before.excluded == {}

    (healed,) = get_plan_cache().values()
    assert healed.algo == plan_before.fallbacks[0]
    assert original_algo in healed.excluded
    assert "raised on cached dispatch" in healed.excluded[original_algo]
    assert get_dispatch_stats().fallbacks == 1


def test_mutating_a_snapshot_never_corrupts_dispatch():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    ref = conv2d(x, f, algo="AUTO_HEURISTIC")

    snap = get_plan_cache()
    (plan,) = snap.values()
    plan.algo = "BOGUS"
    plan.fallbacks = ()
    plan.excluded["everything"] = "scribbled on the snapshot"
    plan.trial_times["BOGUS"] = 1e9

    # The live cache is unaffected: the next call is a plain hit running
    # the originally selected algorithm.
    y = conv2d(x, f, algo="AUTO_HEURISTIC")
    np.testing.assert_allclose(y, ref)
    (live,) = get_plan_cache().values()
    assert live.algo != "BOGUS"
    assert live.excluded == {}
    assert get_dispatch_stats().cache_hits == 1


def test_two_snapshots_are_independent():
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO_HEURISTIC")
    a = get_plan_cache()
    b = get_plan_cache()
    (pa,), (pb,) = a.values(), b.values()
    assert pa is not pb
    assert pa.excluded is not pb.excluded
    pa.excluded["x"] = "y"
    assert "x" not in pb.excluded


def test_exhausted_fallbacks_raise_and_record(monkeypatch):
    prob = ConvProblem(n=1, c=4, h=8, w=8, k=4)
    x, f = _data(prob)
    conv2d(x, f, algo="AUTO_HEURISTIC")
    (plan,) = get_plan_cache().values()
    everything = {plan.algo, *plan.fallbacks}

    _fail_algos(monkeypatch, everything)
    with pytest.raises(ConvConfigError, match="exhausted every fallback"):
        conv2d(x, f, algo="AUTO_HEURISTIC")

    # Every failure was recorded on the (replaced) cached entry.
    (after,) = get_plan_cache().values()
    assert set(after.excluded) == everything


# ---------------------------------------------------------------------------
# Size bound
# ---------------------------------------------------------------------------
def test_plan_cache_size_bound_evicts_oldest():
    set_plan_cache_limit(2)
    shapes = [ConvProblem(n=n, c=4, h=8, w=8, k=4) for n in (1, 2, 3)]
    for prob in shapes:
        x, f = _data(prob)
        conv2d(x, f, algo="AUTO_HEURISTIC")
    cache = get_plan_cache()
    assert len(cache) == 2
    assert {key.n for key in cache} == {2, 3}  # oldest (n=1) evicted
    assert get_dispatch_stats().plan_evictions == 1


def test_plan_cache_limit_validation():
    with pytest.raises(ConvConfigError):
        set_plan_cache_limit(0)


# ---------------------------------------------------------------------------
# Thread safety (smoke)
# ---------------------------------------------------------------------------
def test_threaded_dispatch_smoke():
    probs = [
        ConvProblem(n=1, c=4, h=8, w=8, k=4),
        ConvProblem(n=2, c=4, h=8, w=8, k=4),
    ]
    data = [_data(p) for p in probs]
    refs = [conv2d(x, f, algo="DIRECT") for x, f in data]

    def dispatch(i):
        x, f = data[i % len(data)]
        return i % len(data), conv2d(x, f, algo="AUTO_HEURISTIC")

    with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(dispatch, range(16)))
    for i, y in results:
        prob = probs[i]
        np.testing.assert_allclose(y, refs[i], atol=conv_tolerance(prob) * 4)

    stats = get_dispatch_stats()
    assert stats.calls == 16
    assert len(get_plan_cache()) == len(probs)


# ---------------------------------------------------------------------------
# Trial-history cap (metrics)
# ---------------------------------------------------------------------------
def test_trial_history_capped_with_exact_aggregates():
    stats = DispatchStats()
    n = TRIAL_HISTORY_CAP + 18
    for i in range(n):
        stats.record_trial("WINOGRAD", float(i + 1))
    history = stats.trial_times["WINOGRAD"]
    assert len(history) == TRIAL_HISTORY_CAP
    assert history[-1] == float(n)  # newest retained
    assert history[0] == float(n - TRIAL_HISTORY_CAP + 1)  # oldest trimmed

    agg = stats.trial_stats["WINOGRAD"]
    assert agg.count == n
    assert agg.min == 1.0 and agg.max == float(n)
    assert stats.mean_trial_time("WINOGRAD") == pytest.approx((n + 1) / 2)
    assert stats.trials_run == n
